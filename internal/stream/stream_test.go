package stream

import (
	"math"
	"testing"
	"testing/quick"

	"gveleiden/internal/core"
	"gveleiden/internal/gen"
	"gveleiden/internal/graph"
	"gveleiden/internal/quality"
)

func TestBasicMutation(t *testing.T) {
	s := New(3)
	s.AddEdge(0, 1, 1)
	s.AddEdge(1, 2, 2)
	if s.NumEdges() != 2 || s.NumVertices() != 3 {
		t.Fatalf("edges=%d vertices=%d", s.NumEdges(), s.NumVertices())
	}
	if !s.HasEdge(0, 1) || !s.HasEdge(1, 0) {
		t.Fatal("symmetry broken")
	}
	if s.Weight(1, 2) != 2 {
		t.Fatalf("weight = %v", s.Weight(1, 2))
	}
	s.AddEdge(0, 1, 3) // reinforce
	if s.Weight(0, 1) != 4 || s.NumEdges() != 2 {
		t.Fatal("reinforcement broken")
	}
	if !s.RemoveEdge(0, 1) {
		t.Fatal("remove failed")
	}
	if s.HasEdge(1, 0) || s.NumEdges() != 1 {
		t.Fatal("remove left residue")
	}
	if s.RemoveEdge(0, 1) {
		t.Fatal("double remove succeeded")
	}
	if s.Degree(1) != 1 {
		t.Fatalf("degree = %d", s.Degree(1))
	}
}

func TestVertexGrowthAndLoops(t *testing.T) {
	s := New(0)
	s.AddEdge(5, 5, 2) // loop on a new vertex
	if s.NumVertices() != 6 || s.NumEdges() != 1 {
		t.Fatalf("v=%d e=%d", s.NumVertices(), s.NumEdges())
	}
	g := s.Snapshot()
	if g.ArcWeight(5, 5) != 2 {
		t.Fatalf("loop weight = %v", g.ArcWeight(5, 5))
	}
	if g.VertexWeight(5) != 2 {
		t.Fatalf("K_5 = %v", g.VertexWeight(5))
	}
}

func TestFromCSRRoundTrip(t *testing.T) {
	g, _ := gen.WebGraph(500, 8, 3)
	s := FromCSR(g)
	if s.NumEdges() != g.NumUndirectedEdges() {
		t.Fatalf("edges %d vs %d", s.NumEdges(), g.NumUndirectedEdges())
	}
	snap := s.Snapshot()
	if snap.NumArcs() != g.NumArcs() {
		t.Fatalf("arcs %d vs %d", snap.NumArcs(), g.NumArcs())
	}
	if snap.TotalWeight() != g.TotalWeight() {
		t.Fatal("round trip changed total weight")
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
}

// assertSameCSR fails unless a and b are bit-identical CSRs: same
// vertex count and the same sorted adjacency with equal weights.
func assertSameCSR(t *testing.T, a, b *graph.CSR) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() {
		t.Fatalf("vertex counts differ: %d vs %d", a.NumVertices(), b.NumVertices())
	}
	if a.NumArcs() != b.NumArcs() {
		t.Fatalf("arc counts differ: %d vs %d", a.NumArcs(), b.NumArcs())
	}
	n := a.NumVertices()
	for i := 0; i < n; i++ {
		e1, w1 := a.Neighbors(uint32(i))
		e2, w2 := b.Neighbors(uint32(i))
		if len(e1) != len(e2) {
			t.Fatalf("vertex %d: degree %d vs %d", i, len(e1), len(e2))
		}
		for k := range e1 {
			if e1[k] != e2[k] || w1[k] != w2[k] {
				t.Fatalf("vertex %d arc %d differs: (%d,%g) vs (%d,%g)",
					i, k, e1[k], w1[k], e2[k], w2[k])
			}
		}
	}
}

func TestApplyMatchesApplyDelta(t *testing.T) {
	g, _ := gen.SocialNetwork(600, 10, 6, 0.3, 5)
	ins, del := graph.RandomDelta(g, 40, 30, 9)

	viaRebuild, err := graph.ApplyDelta(g, ins, del)
	if err != nil {
		t.Fatal(err)
	}

	s := FromCSR(g)
	if err := s.Apply(ins, del); err != nil {
		t.Fatal(err)
	}
	assertSameCSR(t, s.Snapshot(), viaRebuild)
}

// TestApplyDifferentialRandomized is the unified-semantics oracle: on
// randomized batches — duplicate insertions, delete-then-reinsert of
// the same edge, negative (cancelling) weights — stream.Apply+Snapshot
// and graph.ApplyDelta must produce bit-identical CSRs, and must agree
// on whether the batch is valid at all.
func TestApplyDifferentialRandomized(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		g, _ := gen.SocialNetwork(300, 8, 5, 0.3, seed+1)
		rng := seed*2654435761 + 17
		next := func() uint64 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			return rng
		}
		n := uint32(g.NumVertices())

		// Deletions: existing edges, with an occasional duplicate.
		_, del := graph.RandomDelta(g, 0, 12, seed+3)
		if seed%4 == 0 && len(del) > 0 {
			del = append(del, del[int(next()%uint64(len(del)))]) // duplicate → invalid
		}
		// Insertions: fresh edges, reinforcements, re-inserts of deleted
		// edges, duplicates within the batch, and negative weights.
		var ins []graph.Edge
		for i := 0; i < 30; i++ {
			var e graph.Edge
			switch next() % 4 {
			case 0: // random pair (may exist, may repeat)
				e = graph.Edge{U: uint32(next()) % n, V: uint32(next()) % n, W: float32(next()%5) + 1}
			case 1: // re-insert a deleted edge
				if len(del) > 0 {
					d := del[int(next()%uint64(len(del)))]
					e = graph.Edge{U: d.U, V: d.V, W: 2}
				} else {
					e = graph.Edge{U: uint32(next()) % n, V: uint32(next()) % n, W: 1}
				}
			case 2: // negative weight: cancels or dips an existing edge
				e = graph.Edge{U: uint32(next()) % n, V: uint32(next()) % n, W: -float32(next()%3) - 1}
			case 3: // duplicate of an earlier insertion
				if len(ins) > 0 {
					e = ins[int(next()%uint64(len(ins)))]
				} else {
					e = graph.Edge{U: uint32(next()) % n, V: uint32(next()) % n, W: 1}
				}
			}
			ins = append(ins, e)
		}

		viaRebuild, errRebuild := graph.ApplyDelta(g, ins, del)
		s := FromCSR(g)
		before := s.Snapshot()
		errStream := s.Apply(ins, del)

		if (errRebuild == nil) != (errStream == nil) {
			t.Fatalf("seed %d: appliers disagree on validity: rebuild=%v stream=%v",
				seed, errRebuild, errStream)
		}
		if errRebuild != nil {
			// Rejected batch: the stream graph must be untouched.
			assertSameCSR(t, s.Snapshot(), before)
			continue
		}
		assertSameCSR(t, s.Snapshot(), viaRebuild)
		if err := viaRebuild.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestApplyRejectsMissingDeletion(t *testing.T) {
	s := New(3)
	s.AddEdge(0, 1, 1)
	err := s.Apply(nil, []graph.Edge{{U: 1, V: 2}})
	if err == nil {
		t.Fatal("deleting a missing edge must error")
	}
}

// TestApplyFailedBatchIsNoOp is the regression test for the
// partial-mutation bug: Apply used to delete edges one at a time and
// return mid-batch on the first missing deletion, leaving earlier
// deletions applied. A rejected batch must leave NumEdges, weights, and
// adjacency bit-identical.
func TestApplyFailedBatchIsNoOp(t *testing.T) {
	g, _ := gen.WebGraph(400, 8, 7)
	s := FromCSR(g)
	before := s.Snapshot()
	edgesBefore := s.NumEdges()

	ins, del := graph.RandomDelta(before, 10, 10, 11)
	// Poison the batch *after* valid deletions, so the old
	// apply-as-you-validate behaviour would have mutated first.
	del = append(del, graph.Edge{U: 0, V: 0}) // self-loop that does not exist

	if err := s.Apply(ins, del); err == nil {
		t.Fatal("batch with a missing deletion must be rejected")
	}
	if s.NumEdges() != edgesBefore {
		t.Fatalf("NumEdges mutated: %d vs %d", s.NumEdges(), edgesBefore)
	}
	assertSameCSR(t, s.Snapshot(), before)

	// Duplicate deletions poison a batch the same way.
	ins2, del2 := graph.RandomDelta(before, 5, 5, 13)
	del2 = append(del2, del2[0])
	if err := s.Apply(ins2, del2); err == nil {
		t.Fatal("batch with a duplicate deletion must be rejected")
	}
	assertSameCSR(t, s.Snapshot(), before)

	// A non-finite insertion weight poisons a batch too.
	if err := s.Apply([]graph.Edge{{U: 1, V: 2, W: float32(math.NaN())}}, nil); err == nil {
		t.Fatal("batch with a NaN insertion must be rejected")
	}
	assertSameCSR(t, s.Snapshot(), before)

	// The valid prefix of the poisoned batch still applies on its own.
	if err := s.Apply(ins, del[:len(del)-1]); err != nil {
		t.Fatal(err)
	}
}

// TestAddEdgeWeightValidation mirrors the PR 4 reader validation on the
// mutable ingest path: non-finite weights are rejected, float32
// overflow of the summed weight is rejected, and a sum reaching zero or
// below cancels the edge instead of materializing a CSR the readers
// would refuse.
func TestAddEdgeWeightValidation(t *testing.T) {
	s := New(2)
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := s.AddEdge(0, 1, float32(w)); err == nil {
			t.Fatalf("AddEdge accepted non-finite weight %v", w)
		}
	}
	if s.NumEdges() != 0 || s.NumVertices() != 2 {
		t.Fatal("rejected AddEdge mutated the graph")
	}

	// Overflowing sum.
	if err := s.AddEdge(0, 1, math.MaxFloat32); err != nil {
		t.Fatal(err)
	}
	if err := s.AddEdge(0, 1, math.MaxFloat32); err == nil {
		t.Fatal("AddEdge accepted a float32-overflowing sum")
	}
	if s.Weight(0, 1) != math.MaxFloat32 {
		t.Fatal("failed AddEdge mutated the weight")
	}

	// Cancellation to zero removes the edge entirely.
	s2 := New(0)
	s2.AddEdge(3, 4, 2)
	if err := s2.AddEdge(3, 4, -2); err != nil {
		t.Fatal(err)
	}
	if s2.HasEdge(3, 4) || s2.HasEdge(4, 3) || s2.NumEdges() != 0 {
		t.Fatal("zero-sum edge survived")
	}
	// Driving below zero removes it too.
	s2.AddEdge(3, 4, 1)
	if err := s2.AddEdge(3, 4, -5); err != nil {
		t.Fatal(err)
	}
	if s2.HasEdge(3, 4) || s2.NumEdges() != 0 {
		t.Fatal("negative-sum edge survived")
	}
	// A fresh negative insertion never creates an edge, but still grows
	// the vertex set (the endpoints were mentioned).
	if err := s2.AddEdge(7, 8, -1); err != nil {
		t.Fatal(err)
	}
	if s2.HasEdge(7, 8) || s2.NumVertices() != 9 {
		t.Fatalf("fresh negative edge: has=%v n=%d", s2.HasEdge(7, 8), s2.NumVertices())
	}
	// Snapshots of a cancelled-edge graph stay reader-clean.
	if err := s2.Snapshot().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamDrivesDynamicLeiden(t *testing.T) {
	// End-to-end: stream mutations + dynamic Leiden across 4 batches.
	g0, _ := gen.SocialNetwork(1200, 12, 10, 0.3, 21)
	s := FromCSR(g0)
	opt := core.DefaultOptions()
	opt.Threads = 2
	res := core.Leiden(g0, opt)
	for batch := 0; batch < 4; batch++ {
		snap := s.Snapshot()
		ins, del := graph.RandomDelta(snap, 20, 10, uint64(batch)+40)
		if err := s.Apply(ins, del); err != nil {
			t.Fatal(err)
		}
		next := s.Snapshot()
		res = core.LeidenDynamic(next, res.Membership,
			core.Delta{Insertions: ins, Deletions: del}, core.DynamicFrontier, opt)
		if err := quality.ValidatePartition(next, res.Membership); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if ds := quality.CountDisconnected(next, res.Membership, 2); ds.Disconnected != 0 {
			t.Fatalf("batch %d: %d disconnected", batch, ds.Disconnected)
		}
	}
}

// TestStreamPropertyVsReference: any mutation sequence leaves the
// stream graph equal to a naive map-of-edges reference.
func TestStreamPropertyVsReference(t *testing.T) {
	type op struct {
		U, V   uint8
		W      uint8
		Remove bool
	}
	err := quick.Check(func(ops []op) bool {
		s := New(0)
		ref := map[[2]uint32]float32{}
		key := func(u, v uint32) [2]uint32 {
			if u > v {
				u, v = v, u
			}
			return [2]uint32{u, v}
		}
		for _, o := range ops {
			u, v := uint32(o.U%32), uint32(o.V%32)
			if o.Remove {
				existed := s.RemoveEdge(u, v)
				_, want := ref[key(u, v)]
				if existed != want {
					return false
				}
				delete(ref, key(u, v))
			} else {
				w := float32(o.W%8) + 1
				s.AddEdge(u, v, w)
				ref[key(u, v)] += w
			}
		}
		if s.NumEdges() != int64(len(ref)) {
			return false
		}
		for k, w := range ref {
			if s.Weight(k[0], k[1]) != w {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
