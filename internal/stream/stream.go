package stream

import (
	"fmt"
	"math"

	"gveleiden/internal/graph"
)

// Graph is a mutable weighted undirected graph. Not safe for concurrent
// mutation; snapshots are independent of later mutations.
type Graph struct {
	adj   []map[uint32]float32 // adj[u][v] = weight (symmetric; loops on u only)
	edges int64                // undirected edge count (loops count once)
}

// New returns a mutable graph with n initial vertices.
func New(n int) *Graph {
	return &Graph{adj: make([]map[uint32]float32, n)}
}

// FromCSR returns a mutable copy of a CSR graph. CSR weights are finite
// by construction (the readers and builders validate them), so AddEdge
// cannot fail here; an edge whose CSR weight is ≤ 0 is dropped, per
// AddEdge's cancellation rule.
func FromCSR(g *graph.CSR) *Graph {
	s := New(g.NumVertices())
	n := g.NumVertices()
	for i := 0; i < n; i++ {
		es, ws := g.Neighbors(uint32(i))
		for k, e := range es {
			if uint32(i) <= e {
				_ = s.AddEdge(uint32(i), e, ws[k])
			}
		}
	}
	return s
}

// NumVertices returns the current vertex count.
func (s *Graph) NumVertices() int { return len(s.adj) }

// NumEdges returns the current undirected edge count.
func (s *Graph) NumEdges() int64 { return s.edges }

// ensure grows the vertex set to cover id v.
func (s *Graph) ensure(v uint32) {
	for uint32(len(s.adj)) <= v {
		s.adj = append(s.adj, nil)
	}
}

// HasEdge reports whether the undirected edge {u,v} exists.
func (s *Graph) HasEdge(u, v uint32) bool {
	if int(u) >= len(s.adj) || s.adj[u] == nil {
		return false
	}
	_, ok := s.adj[u][v]
	return ok
}

// Weight returns the weight of edge {u,v}, 0 if absent.
func (s *Graph) Weight(u, v uint32) float32 {
	if int(u) >= len(s.adj) || s.adj[u] == nil {
		return 0
	}
	return s.adj[u][v]
}

// AddEdge inserts {u,v} with weight w, adding w to an existing edge.
// Self-loops are allowed. New endpoints grow the vertex set.
//
// Weights follow the unified delta semantics (graph.EvaluateDelta): a
// non-finite w, or a summed weight that overflows float32, is rejected
// with an error and the graph is untouched; a summed weight of zero or
// below cancels the edge entirely, so the graph can never materialize a
// CSR the readers' weight validation would reject.
func (s *Graph) AddEdge(u, v uint32, w float32) error {
	if math.IsNaN(float64(w)) || math.IsInf(float64(w), 0) {
		return fmt.Errorf("stream: edge {%d,%d}: non-finite weight %v", u, v, w)
	}
	sum := s.Weight(u, v) + w
	if math.IsInf(float64(sum), 0) {
		return fmt.Errorf("stream: edge {%d,%d}: summed weight overflows float32", u, v)
	}
	s.ensure(u)
	s.ensure(v)
	if sum <= 0 {
		s.dropEdge(u, v)
		return nil
	}
	s.setEdge(u, v, sum)
	return nil
}

// setEdge stores {u,v} with exactly weight w (both directions), growing
// nothing: callers ensure the vertex set first.
func (s *Graph) setEdge(u, v uint32, w float32) {
	if s.adj[u] == nil {
		s.adj[u] = make(map[uint32]float32, 4)
	}
	if _, exists := s.adj[u][v]; !exists {
		s.edges++
	}
	s.adj[u][v] = w
	if u != v {
		if s.adj[v] == nil {
			s.adj[v] = make(map[uint32]float32, 4)
		}
		s.adj[v][u] = w
	}
}

// dropEdge removes {u,v} if present (both directions).
func (s *Graph) dropEdge(u, v uint32) {
	if int(u) >= len(s.adj) || s.adj[u] == nil {
		return
	}
	if _, ok := s.adj[u][v]; !ok {
		return
	}
	delete(s.adj[u], v)
	if u != v && int(v) < len(s.adj) && s.adj[v] != nil {
		delete(s.adj[v], u)
	}
	s.edges--
}

// RemoveEdge deletes {u,v} entirely, reporting whether it existed.
func (s *Graph) RemoveEdge(u, v uint32) bool {
	if !s.HasEdge(u, v) {
		return false
	}
	s.dropEdge(u, v)
	return true
}

// Degree returns u's current neighbour count (loop counts once).
func (s *Graph) Degree(u uint32) int {
	if int(u) >= len(s.adj) {
		return 0
	}
	return len(s.adj[u])
}

// Apply applies a batch under the unified delta semantics shared with
// graph.ApplyDelta (see graph.EvaluateDelta): deletions first, then
// insertions; every deletion must name a distinct existing edge;
// insertion weights must be finite. The whole batch is validated before
// anything mutates, so a rejected batch is a no-op — the graph stays
// bit-identical, which is what lets a long-running ingest path survive
// a desynchronized batch.
func (s *Graph) Apply(insertions, deletions []graph.Edge) error {
	lookup := func(u, v uint32) (float32, bool) {
		if int(u) >= len(s.adj) || s.adj[u] == nil {
			return 0, false
		}
		w, ok := s.adj[u][v]
		return w, ok
	}
	touched, err := graph.EvaluateDelta(lookup, insertions, deletions)
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	// The batch is valid: apply the final per-pair states. Insertions
	// grow the vertex set even when their edge cancelled within the
	// batch, matching a sequential AddEdge replay.
	for _, e := range insertions {
		s.ensure(e.U)
		s.ensure(e.V)
	}
	for k, st := range touched {
		u, v := graph.SplitPairKey(k)
		if st.Present {
			s.setEdge(u, v, st.W)
		} else {
			s.dropEdge(u, v)
		}
	}
	return nil
}

// Snapshot materializes the current state as a compact CSR with sorted
// adjacency — the input format of the detection algorithms.
func (s *Graph) Snapshot() *graph.CSR {
	n := len(s.adj)
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v, w := range s.adj[u] {
			if uint32(u) <= v {
				b.AddEdge(uint32(u), v, w)
			}
		}
	}
	return b.Build()
}
