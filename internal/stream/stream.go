// Package stream provides a mutable graph for evolving-network
// workloads: an adjacency-map overlay supporting edge insertion,
// deletion and weight updates in O(1) expected time, with an efficient
// Snapshot that materializes the current state as the immutable CSR the
// detection algorithms consume. It is the substrate under the dynamic
// Leiden workflow (core.LeidenDynamic): batch mutations accumulate
// here; Snapshot + the batch go to the detector.
package stream

import (
	"fmt"

	"gveleiden/internal/graph"
)

// Graph is a mutable weighted undirected graph. Not safe for concurrent
// mutation; snapshots are independent of later mutations.
type Graph struct {
	adj   []map[uint32]float32 // adj[u][v] = weight (symmetric; loops on u only)
	edges int64                // undirected edge count (loops count once)
}

// New returns a mutable graph with n initial vertices.
func New(n int) *Graph {
	return &Graph{adj: make([]map[uint32]float32, n)}
}

// FromCSR returns a mutable copy of a CSR graph.
func FromCSR(g *graph.CSR) *Graph {
	s := New(g.NumVertices())
	n := g.NumVertices()
	for i := 0; i < n; i++ {
		es, ws := g.Neighbors(uint32(i))
		for k, e := range es {
			if uint32(i) <= e {
				s.AddEdge(uint32(i), e, ws[k])
			}
		}
	}
	return s
}

// NumVertices returns the current vertex count.
func (s *Graph) NumVertices() int { return len(s.adj) }

// NumEdges returns the current undirected edge count.
func (s *Graph) NumEdges() int64 { return s.edges }

// ensure grows the vertex set to cover id v.
func (s *Graph) ensure(v uint32) {
	for uint32(len(s.adj)) <= v {
		s.adj = append(s.adj, nil)
	}
}

// HasEdge reports whether the undirected edge {u,v} exists.
func (s *Graph) HasEdge(u, v uint32) bool {
	if int(u) >= len(s.adj) || s.adj[u] == nil {
		return false
	}
	_, ok := s.adj[u][v]
	return ok
}

// Weight returns the weight of edge {u,v}, 0 if absent.
func (s *Graph) Weight(u, v uint32) float32 {
	if int(u) >= len(s.adj) || s.adj[u] == nil {
		return 0
	}
	return s.adj[u][v]
}

// AddEdge inserts {u,v} with weight w, adding w to an existing edge.
// Self-loops are allowed. New endpoints grow the vertex set.
func (s *Graph) AddEdge(u, v uint32, w float32) {
	s.ensure(u)
	s.ensure(v)
	if s.adj[u] == nil {
		s.adj[u] = make(map[uint32]float32, 4)
	}
	if _, exists := s.adj[u][v]; !exists {
		s.edges++
	}
	s.adj[u][v] += w
	if u != v {
		if s.adj[v] == nil {
			s.adj[v] = make(map[uint32]float32, 4)
		}
		s.adj[v][u] += w
	}
}

// RemoveEdge deletes {u,v} entirely, reporting whether it existed.
func (s *Graph) RemoveEdge(u, v uint32) bool {
	if int(u) >= len(s.adj) || s.adj[u] == nil {
		return false
	}
	if _, ok := s.adj[u][v]; !ok {
		return false
	}
	delete(s.adj[u], v)
	if u != v && int(v) < len(s.adj) && s.adj[v] != nil {
		delete(s.adj[v], u)
	}
	s.edges--
	return true
}

// Degree returns u's current neighbour count (loop counts once).
func (s *Graph) Degree(u uint32) int {
	if int(u) >= len(s.adj) {
		return 0
	}
	return len(s.adj[u])
}

// Apply applies a batch: deletions first, then insertions (matching
// graph.ApplyDelta's semantics). It returns an error when a deletion
// names a missing edge, so callers notice desynchronized batches.
func (s *Graph) Apply(insertions, deletions []graph.Edge) error {
	for _, e := range deletions {
		if !s.RemoveEdge(e.U, e.V) {
			return fmt.Errorf("stream: deletion of missing edge {%d,%d}", e.U, e.V)
		}
	}
	for _, e := range insertions {
		s.AddEdge(e.U, e.V, e.W)
	}
	return nil
}

// Snapshot materializes the current state as a compact CSR with sorted
// adjacency — the input format of the detection algorithms.
func (s *Graph) Snapshot() *graph.CSR {
	n := len(s.adj)
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v, w := range s.adj[u] {
			if uint32(u) <= v {
				b.AddEdge(uint32(u), v, w)
			}
		}
	}
	return b.Build()
}
