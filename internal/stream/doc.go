// Package stream provides a mutable graph for evolving-network
// workloads: an adjacency-map overlay supporting edge insertion,
// deletion and weight updates in O(1) expected time, with an efficient
// Snapshot that materializes the current state as the immutable CSR the
// detection algorithms consume. It is the substrate under the dynamic
// Leiden workflow (core.LeidenDynamic): batch mutations accumulate
// here; Snapshot + the batch go to the detector.
//
// Apply consumes a graph.Delta under the same whole-batch semantics as
// graph.EvaluateDelta: the batch is validated first and a rejected
// batch leaves the graph bit-identical, which is what lets
// internal/serve treat an ingest failure as a clean no-op.
//
// The package deliberately trades memory for mutability — a map per
// vertex — and is not safe for concurrent mutation; callers serialize
// writers (internal/serve funnels all mutations through one ingest
// path) and share read-only snapshots instead.
package stream
