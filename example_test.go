package gveleiden_test

import (
	"fmt"

	"gveleiden"
)

// Two 4-cliques joined by a single edge: the smallest graph with an
// unambiguous two-community structure, used across the examples.
func twoCliques() *gveleiden.Graph {
	b := gveleiden.NewBuilder(8)
	for i := uint32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(i, j, 1)
			b.AddEdge(i+4, j+4, 1)
		}
	}
	b.AddEdge(3, 4, 1)
	return b.Build()
}

func ExampleLeiden() {
	g := twoCliques()
	res := gveleiden.Leiden(g, gveleiden.DefaultOptions())
	fmt.Println("communities:", res.NumCommunities)
	fmt.Println("same side:", res.Membership[0] == res.Membership[3])
	fmt.Println("split:", res.Membership[0] != res.Membership[7])
	// Output:
	// communities: 2
	// same side: true
	// split: true
}

func ExampleLeiden_options() {
	g := twoCliques()
	opt := gveleiden.DefaultOptions()
	opt.Refinement = gveleiden.RefineRandom // the original Leiden's rule
	opt.Threads = 2
	res := gveleiden.Leiden(g, opt)
	fmt.Println("communities:", res.NumCommunities)
	// Output:
	// communities: 2
}

func ExampleCountDisconnected() {
	g := twoCliques()
	res := gveleiden.Leiden(g, gveleiden.DefaultOptions())
	ds := gveleiden.CountDisconnected(g, res.Membership, 0)
	fmt.Println("disconnected:", ds.Disconnected)
	// Output:
	// disconnected: 0
}

func ExampleLeidenDynamic() {
	g := twoCliques()
	opt := gveleiden.DefaultOptions()
	res := gveleiden.Leiden(g, opt)

	// A batch arrives: a second bridge between the cliques.
	delta := gveleiden.Delta{
		Insertions: []gveleiden.Edge{{U: 0, V: 7, W: 1}},
	}
	gNew, _ := gveleiden.ApplyDelta(g, delta)
	res2 := gveleiden.LeidenDynamic(gNew, res.Membership, delta,
		gveleiden.DynamicFrontier, opt)
	fmt.Println("still two communities:", res2.NumCommunities == 2)
	// Output:
	// still two communities: true
}

func ExampleAnalyzePartition() {
	g := twoCliques()
	res := gveleiden.Leiden(g, gveleiden.DefaultOptions())
	pm := gveleiden.AnalyzePartition(g, res.Membership)
	fmt.Printf("coverage: %.2f\n", pm.Coverage)
	fmt.Println("sizes:", pm.MinSize, pm.MaxSize)
	// Output:
	// coverage: 0.92
	// sizes: 4 4
}

func ExampleCommunityGraph() {
	g := twoCliques()
	res := gveleiden.Leiden(g, gveleiden.DefaultOptions())
	q, _ := gveleiden.CommunityGraph(g, res.Membership)
	fmt.Println("quotient vertices:", q.NumVertices())
	fmt.Println("bridge weight:", q.ArcWeight(0, 1))
	// Output:
	// quotient vertices: 2
	// bridge weight: 1
}

func ExampleLeidenHierarchy() {
	g, _ := gveleiden.GenerateWeb(2000, 12, 1)
	res, h := gveleiden.LeidenHierarchy(g, gveleiden.DefaultOptions())
	fmt.Println("levels == passes:", h.Depth() == res.Passes)
	flat, _ := h.Flatten(h.Depth())
	fmt.Println("flatten matches:", gveleiden.SamePartition(flat, res.Membership))
	// Output:
	// levels == passes: true
	// flatten matches: true
}

func ExampleModularity() {
	g := twoCliques()
	perCluster := []uint32{0, 0, 0, 0, 1, 1, 1, 1}
	allInOne := []uint32{0, 0, 0, 0, 0, 0, 0, 0}
	fmt.Printf("split: %.4f\n", gveleiden.Modularity(g, perCluster))
	fmt.Printf("merged: %.4f\n", gveleiden.Modularity(g, allInOne))
	// Output:
	// split: 0.4231
	// merged: 0.0000
}
