package gveleiden_test

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"gveleiden"
)

// TestServeSmoke is the serving counterpart of TestScaleSmoke: build
// cmd/gveserve, stand it up on a generated 100k-vertex graph, hammer
// the query API concurrently while a delta ingest forces a snapshot
// swap, verify /healthz stays green throughout, and shut down with
// SIGTERM expecting a clean exit 0. Gated behind an env var so the
// regular test run stays fast; CI sets GVE_SERVE_SMOKE=1 with -race
// and a job timeout.
func TestServeSmoke(t *testing.T) {
	if os.Getenv("GVE_SERVE_SMOKE") == "" {
		t.Skip("set GVE_SERVE_SMOKE=1 to run the serving smoke test")
	}
	bin := buildCLIs(t)

	cmd := exec.Command(filepath.Join(bin, "gveserve"),
		"-gen", "social", "-n", "100000",
		"-addr", "127.0.0.1:0", "-log-format", "json")
	var stdout, stderr lockedBuffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait for the listen line and extract the ephemeral address.
	addrRe := regexp.MustCompile(`serving on http://(\S+) `)
	deadline := time.Now().Add(120 * time.Second)
	var base string
	for base == "" {
		if m := addrRe.FindStringSubmatch(stdout.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up:\nstdout:\n%s\nstderr:\n%s", stdout.String(), stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	c := gveleiden.NewServeClient(base)

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Vertices != 100000 || st.Version != 1 {
		t.Fatalf("unexpected initial stats: %+v", st)
	}

	// Concurrent query load: 8 workers mixing the read endpoints, with
	// a liveness prober keeping /healthz green across the swap below.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	var queries int64
	var qmu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			rng := seed*2654435761 + 1
			local := int64(0)
			for {
				select {
				case <-stop:
					qmu.Lock()
					queries += local
					qmu.Unlock()
					return
				default:
				}
				rng = rng*1664525 + 1013904223
				v := rng % 100000
				switch rng % 3 {
				case 0:
					if _, err := c.Community(v); err != nil {
						report(err)
						return
					}
				case 1:
					if _, err := c.Neighbors(v); err != nil {
						report(err)
						return
					}
				case 2:
					if _, err := c.Hierarchy(v); err != nil {
						report(err)
						return
					}
				}
				local++
			}
		}(uint32(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.Healthz(); err != nil {
				report(fmt.Errorf("healthz went red: %w", err))
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// One delta ingest under load: insert a new vertex wired into the
	// graph and wait for the warm-started snapshot swap.
	loadStart := time.Now()
	if _, err := c.ApplyDelta([]gveleiden.ServeEdgeUpdate{
		{U: 100000, V: 1, W: 1}, {U: 100000, V: 2, W: 1}, {U: 100000, V: 3, W: 1},
	}, nil); err != nil {
		t.Fatal(err)
	}
	for {
		st, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Version >= 2 {
			if !st.Warm {
				t.Fatalf("swap was not warm-started: %+v", st)
			}
			if st.Vertices != 100001 {
				t.Fatalf("vertices after ingest = %d, want 100001", st.Vertices)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot swap never happened:\nstderr:\n%s", stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Keep load running briefly past the swap, then stop and count.
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()
	loadSecs := time.Since(loadStart).Seconds()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	t.Logf("served %d queries in %.1fs (%.0f QPS) across a snapshot swap",
		queries, loadSecs, float64(queries)/loadSecs)

	// Graceful SIGTERM: drain and exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("exit after SIGTERM = %v, want 0\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "shutdown complete") {
		t.Fatalf("no shutdown line:\n%s", stdout.String())
	}
}
