// Package gveleiden is a fast shared-memory parallel implementation of
// the Leiden community-detection algorithm — a Go reproduction of
// "Fast Leiden Algorithm for Community Detection in Shared Memory
// Setting" (Sahu, Kothapalli, Banerjee; ICPP 2024).
//
// The package is a thin public facade over the internal implementation:
//
//	g, err := gveleiden.LoadGraph("web.mtx")
//	res := gveleiden.Leiden(g, gveleiden.DefaultOptions())
//	fmt.Println(res.NumCommunities, res.Modularity)
//
// Graphs are weighted CSR structures built with NewBuilder or loaded
// from Matrix Market / edge-list / binary files. Leiden runs the
// paper's GVE-Leiden algorithm (asynchronous parallel local moving,
// greedy constrained refinement, prefix-sum CSR aggregation); Louvain
// runs GVE-Louvain, the same machinery without the refinement phase.
package gveleiden

import (
	"io"
	"log/slog"
	"time"

	"gveleiden/internal/core"
	"gveleiden/internal/graph"
	"gveleiden/internal/graph/gvecsr"
	"gveleiden/internal/observe"
	"gveleiden/internal/parallel"
	"gveleiden/internal/quality"
)

// Graph is a weighted undirected graph in CSR form.
type Graph = graph.CSR

// Builder accumulates edges and produces a Graph.
type Builder = graph.Builder

// Edge is a weighted undirected edge for FromEdges.
type Edge = graph.Edge

// Options configures a Leiden or Louvain run.
type Options = core.Options

// Result is the output of a run: membership, community count,
// modularity, and per-phase statistics.
type Result = core.Result

// Stats aggregates per-pass phase timings.
type Stats = core.Stats

// RefinementMode selects greedy or randomized refinement.
type RefinementMode = core.RefinementMode

// LabelMode selects move-based or refine-based super-vertex labels.
type LabelMode = core.LabelMode

// Variant selects the light / medium / heavy effort level.
type Variant = core.Variant

// Re-exported enumeration values; see the core package for semantics.
const (
	RefineGreedy = core.RefineGreedy
	RefineRandom = core.RefineRandom
	LabelMove    = core.LabelMove
	LabelRefine  = core.LabelRefine
	VariantLight = core.VariantLight
	VariantMed   = core.VariantMedium
	VariantHeavy = core.VariantHeavy
)

// Pool is a persistent work-stealing worker pool. Every parallel
// region of a run executes on one; by default all runs share a single
// process-wide pool whose workers spawn once and park between regions.
// Construct a dedicated Pool (and set Options.Pool) to isolate
// concurrent runs from each other.
type Pool = parallel.Pool

// NewPool returns a dedicated worker pool with the given number of
// persistent workers (0 = GOMAXPROCS). Close it when done.
func NewPool(threads int) *Pool { return parallel.NewPool(threads) }

// DefaultPool returns the shared process-wide pool used when
// Options.Pool is nil.
func DefaultPool() *Pool { return parallel.Default() }

// DefaultOptions returns the configuration evaluated in the paper.
func DefaultOptions() Options { return core.DefaultOptions() }

// Leiden detects communities with GVE-Leiden.
func Leiden(g *Graph, opt Options) *Result { return core.Leiden(g, opt) }

// Louvain detects communities with GVE-Louvain (no refinement phase;
// may emit internally-disconnected communities).
func Louvain(g *Graph, opt Options) *Result { return core.Louvain(g, opt) }

// NewBuilder returns a graph builder expecting at least n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a symmetric weighted graph from an edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// FromAdjacency builds a unit-weight graph from adjacency lists.
func FromAdjacency(adj [][]uint32) *Graph { return graph.FromAdjacency(adj) }

// LoadGraph loads a graph from a .gvecsr container (memory-mapped; see
// storage.go and FORMAT.md), or a .mtx, .bin, or edge-list file.
func LoadGraph(path string) (*Graph, error) {
	f, err := gvecsr.LoadAny(path)
	if err != nil {
		return nil, err
	}
	return f.Graph()
}

// Modularity evaluates Equation 1 of the paper for any membership.
func Modularity(g *Graph, membership []uint32) float64 {
	return quality.Modularity(g, membership)
}

// CPM evaluates the Constant Potts Model quality function.
func CPM(g *Graph, membership []uint32, gamma float64) float64 {
	return quality.CPM(g, membership, gamma)
}

// DisconnectedStats reports internally-disconnected communities.
type DisconnectedStats = quality.DisconnectedStats

// CountDisconnected counts internally-disconnected communities — the
// defect Leiden exists to prevent (Figure 6d of the paper).
func CountDisconnected(g *Graph, membership []uint32, threads int) DisconnectedStats {
	return quality.CountDisconnected(g, membership, threads)
}

// NMI compares two partitions (1 = identical up to relabeling).
func NMI(a, b []uint32) float64 { return quality.NMI(a, b) }

// Level is one layer of the community dendrogram.
type Level = core.Level

// Hierarchy is the full dendrogram of a run; Flatten(d) composes the
// first d levels back onto the input vertices.
type Hierarchy = core.Hierarchy

// LeidenHierarchy runs Leiden and also returns the full dendrogram —
// one level per pass, each a partition of the previous level's
// communities. Useful for multi-resolution views of the network.
func LeidenHierarchy(g *Graph, opt Options) (*Result, *Hierarchy) {
	return core.LeidenHierarchy(g, opt)
}

// LeidenDeterministic runs Leiden in deterministic mode: the local
// moving and refinement phases process graph-coloring classes with
// frozen decision kernels, so on integer-weight graphs the result is
// identical for any thread count. Equivalent to setting
// Options.Deterministic.
func LeidenDeterministic(g *Graph, opt Options) *Result {
	opt.Deterministic = true
	return core.Leiden(g, opt)
}

// Observability. Set Options.Tracer and/or Options.Observer to watch a
// run; both default to nil, which keeps every instrumentation site on a
// no-op fast path.

// Tracer records phase/pass/iteration spans of a run and writes them as
// Chrome trace-event JSON (chrome://tracing, Perfetto).
type Tracer = observe.Tracer

// NewTracer returns a tracer whose timeline starts now.
func NewTracer() *Tracer { return observe.NewTracer() }

// Observer receives pass and iteration events during a run.
type Observer = observe.Observer

// PassEvent describes one completed pass (super-vertex level).
type PassEvent = observe.PassEvent

// IterEvent describes one completed local-moving iteration.
type IterEvent = observe.IterEvent

// Progress is an Observer that streams one line per pass to a writer.
type Progress = observe.Progress

// NewProgress returns a Progress observer writing to w.
func NewProgress(w io.Writer) *Progress { return observe.NewProgress(w) }

// MultiObserver fans events out to several observers in order.
func MultiObserver(obs ...Observer) Observer { return observe.Multi(obs...) }

// LevelEvent describes one completed aggregating pass, delivered to
// Options.Inspector: the level graph, its move and refined partitions,
// and the freshly aggregated super-vertex graph. The slices and the
// aggregated graph alias live workspace memory — read them during the
// callback, do not retain them. The internal/oracle package builds its
// per-level invariant checks on this hook.
type LevelEvent = core.LevelEvent

// LevelInspector receives a LevelEvent after each aggregating pass.
type LevelInspector = core.LevelInspector

// MetricSet is an ordered collection of metrics writable as Prometheus
// text exposition format or JSON.
type MetricSet = observe.MetricSet

// NewMetricSet returns an empty metric set.
func NewMetricSet() *MetricSet { return observe.NewMetricSet() }

// PoolCounters is a snapshot of a worker pool's scheduler counters:
// regions, chunk claims, steals, park/unpark cycles.
type PoolCounters = parallel.CounterSnapshot

// AddRunMetrics appends a run's statistics (totals, phase-split
// fractions, per-pass series) to ms.
func AddRunMetrics(ms *MetricSet, s Stats) { s.AddMetrics(ms) }

// AddPoolMetrics appends a pool counter snapshot to ms.
func AddPoolMetrics(ms *MetricSet, c PoolCounters) { core.AddPoolMetrics(ms, c) }

// Continuous telemetry. The types above observe a single run; the types
// below aggregate across a process lifetime — histograms of phase
// durations, a flight recorder of recent runs, a runtime-metrics
// sampler, and an HTTP introspection server tying them together.

// Histogram is a lock-free log-linear latency/value histogram with
// padded per-worker shards; Observe is allocation-free and a nil
// *Histogram discards observations.
type Histogram = observe.Histogram

// NewHistogram returns a histogram sharded for the current GOMAXPROCS.
func NewHistogram() *Histogram { return observe.NewHistogram() }

// HistogramSnapshot is a merged point-in-time view of a Histogram.
type HistogramSnapshot = observe.HistogramSnapshot

// Telemetry aggregates runs continuously: per-phase duration
// histograms, pass/run/ΔQ histograms, pool region latencies, lifetime
// counters, and a flight recorder. It implements Observer — set it as
// Options.Observer and it accumulates every pass of every run.
type Telemetry = observe.Telemetry

// NewTelemetry returns a telemetry aggregator whose flight recorder
// keeps the last flightSize runs (the default when <= 0).
func NewTelemetry(flightSize int) *Telemetry { return observe.NewTelemetry(flightSize) }

// FlightRecorder is a bounded ring of recent run records, dumpable as
// JSON at any time with zero steady-state allocation.
type FlightRecorder = observe.FlightRecorder

// RunRecord is one completed run as the flight recorder remembers it.
type RunRecord = observe.RunRecord

// PhaseSeconds is the per-phase wall-time breakdown of one run.
type PhaseSeconds = observe.PhaseSeconds

// Sampler polls runtime/metrics (heap, goroutines, GC pauses,
// scheduling latency) on an interval for exposition alongside the
// algorithm's own telemetry.
type Sampler = observe.Sampler

// NewSampler returns a sampler polling every interval (the default
// when <= 0). Call Start to begin and Stop to halt it.
func NewSampler(interval time.Duration) *Sampler { return observe.NewSampler(interval) }

// IntrospectionServer serves /metrics, /metrics.json, /healthz,
// /debug/flight, /debug/vars, and /debug/pprof on one mux. The gather
// callback assembles each scrape; Start binds synchronously and
// Shutdown drains gracefully.
type IntrospectionServer = observe.Server

// NewIntrospectionServer builds an unstarted introspection server.
func NewIntrospectionServer(addr string, gather func() *MetricSet, flight *FlightRecorder) *IntrospectionServer {
	return observe.NewServer(addr, gather, flight)
}

// NewLogger builds a slog.Logger writing to w as "json" or text.
func NewLogger(w io.Writer, format string, level slog.Level) *slog.Logger {
	return observe.NewLogger(w, format, level)
}

// SlogObserver is an Observer emitting one structured log record per
// pass — the structured-logging counterpart of Progress.
type SlogObserver = observe.SlogObserver

// NewSlogObserver returns an observer logging pass summaries to l.
func NewSlogObserver(l *slog.Logger) *SlogObserver { return observe.NewSlogObserver(l) }

// LogRun emits the standard run-summary record for a RunRecord.
func LogRun(l *slog.Logger, r RunRecord) { observe.LogRun(l, r) }
