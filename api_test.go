// Integration tests exercising the public API end to end, the way a
// downstream user would.
package gveleiden_test

import (
	"os"
	"path/filepath"
	"testing"

	"gveleiden"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	// Build → detect → evaluate → persist → reload, all through the
	// public surface.
	g, truth := gveleiden.GeneratePlanted(1500, 12, 12, 0.25, 3)
	res := gveleiden.Leiden(g, gveleiden.DefaultOptions())
	if res.NumCommunities < 2 {
		t.Fatalf("|Γ| = %d", res.NumCommunities)
	}
	if res.Modularity != gveleiden.Modularity(g, res.Membership) {
		t.Fatal("Result.Modularity inconsistent with Modularity()")
	}
	if nmi := gveleiden.NMI(res.Membership, truth); nmi < 0.85 {
		t.Fatalf("NMI vs planted = %.3f", nmi)
	}
	if ds := gveleiden.CountDisconnected(g, res.Membership, 0); ds.Disconnected != 0 {
		t.Fatalf("%d disconnected", ds.Disconnected)
	}
}

func TestPublicAPIBuilderAndLoad(t *testing.T) {
	b := gveleiden.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	g := b.Build()
	if g.NumVertices() != 4 || g.NumUndirectedEdges() != 3 {
		t.Fatal("builder surface broken")
	}
	edges := []gveleiden.Edge{{U: 0, V: 1, W: 2}}
	g2 := gveleiden.FromEdges(2, edges)
	if g2.ArcWeight(0, 1) != 2 {
		t.Fatal("FromEdges surface broken")
	}
	g3 := gveleiden.FromAdjacency([][]uint32{{1}, {0}})
	if g3.NumUndirectedEdges() != 1 {
		t.Fatal("FromAdjacency surface broken")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := gveleiden.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumVertices() != 3 {
		t.Fatal("LoadGraph surface broken")
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	web, memb := gveleiden.GenerateWeb(500, 10, 1)
	if web.NumVertices() != 500 || len(memb) != 500 {
		t.Fatal("GenerateWeb broken")
	}
	soc, _ := gveleiden.GenerateSocial(400, 10, 8, 0.3, 2)
	if soc.NumVertices() != 400 {
		t.Fatal("GenerateSocial broken")
	}
	if gveleiden.GenerateRoad(300, 3).NumVertices() < 300 {
		t.Fatal("GenerateRoad broken")
	}
	if gveleiden.GenerateKmer(300, 4).NumVertices() != 300 {
		t.Fatal("GenerateKmer broken")
	}
}

func TestPublicAPILouvainVsLeiden(t *testing.T) {
	g, _ := gveleiden.GenerateWeb(2000, 12, 5)
	opt := gveleiden.DefaultOptions()
	lou := gveleiden.Louvain(g, opt)
	lei := gveleiden.Leiden(g, opt)
	if lou.NumCommunities < 1 || lei.NumCommunities < 1 {
		t.Fatal("no communities found")
	}
	if lei.Modularity < lou.Modularity-0.05 {
		t.Fatalf("Leiden Q %.4f far below Louvain %.4f", lei.Modularity, lou.Modularity)
	}
}

func TestPublicAPIDynamicFlow(t *testing.T) {
	g, _ := gveleiden.GenerateSocial(2000, 12, 16, 0.3, 6)
	opt := gveleiden.DefaultOptions()
	res := gveleiden.Leiden(g, opt)

	delta := gveleiden.RandomDelta(g, 30, 20, 7)
	gNew, err := gveleiden.ApplyDelta(g, delta)
	if err != nil {
		t.Fatal(err)
	}
	dyn := gveleiden.LeidenDynamic(gNew, res.Membership, delta, gveleiden.DynamicFrontier, opt)
	if len(dyn.Membership) != gNew.NumVertices() {
		t.Fatal("dynamic membership wrong length")
	}
	static := gveleiden.Leiden(gNew, opt)
	if dyn.Modularity < static.Modularity-0.03 {
		t.Fatalf("dynamic Q %.4f below static %.4f", dyn.Modularity, static.Modularity)
	}
}

func TestPublicAPICPMObjective(t *testing.T) {
	g, _ := gveleiden.GenerateWeb(1000, 10, 9)
	opt := gveleiden.DefaultOptions()
	opt.Objective = gveleiden.ObjectiveCPM
	opt.Resolution = 0.05
	res := gveleiden.Leiden(g, opt)
	if res.Quality != gveleiden.CPM(g, res.Membership, 0.05) {
		t.Fatal("Result.Quality inconsistent with CPM()")
	}
	if ds := gveleiden.CountDisconnected(g, res.Membership, 0); ds.Disconnected != 0 {
		t.Fatalf("%d disconnected under CPM", ds.Disconnected)
	}
}

func TestPublicAPIOptionKnobs(t *testing.T) {
	g, _ := gveleiden.GenerateWeb(800, 10, 11)
	opt := gveleiden.DefaultOptions()
	opt.Refinement = gveleiden.RefineRandom
	opt.Labels = gveleiden.LabelRefine
	opt.Variant = gveleiden.VariantHeavy
	opt.Threads = 3
	res := gveleiden.Leiden(g, opt)
	if res.NumCommunities < 1 || res.Modularity < 0.3 {
		t.Fatalf("knob combination broke detection: |Γ|=%d Q=%.3f",
			res.NumCommunities, res.Modularity)
	}
}
