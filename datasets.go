package gveleiden

import (
	"gveleiden/internal/gen"
)

// The paper evaluates on four classes of graphs from the SuiteSparse
// collection (Table 2). These deterministic generators reproduce each
// class's structural signature at any scale (see DESIGN.md §3) and give
// examples and downstream users self-contained workloads.

// GenerateWeb returns a LAW-style web-crawl graph: high average degree,
// power-law community sizes, strong locality. The second return value
// is the planted community of each vertex.
func GenerateWeb(n int, avgDegree float64, seed uint64) (*Graph, []uint32) {
	g, m := gen.WebGraph(n, avgDegree, seed)
	return g, m
}

// GenerateSocial returns a SNAP-style social network: dense, weakly
// clustered, with the given number of planted communities and mixing
// parameter μ (the fraction of inter-community edges).
func GenerateSocial(n int, avgDegree float64, communities int, mixing float64, seed uint64) (*Graph, []uint32) {
	g, m := gen.SocialNetwork(n, avgDegree, communities, mixing, seed)
	return g, m
}

// GenerateRoad returns a DIMACS10-style road network: average degree
// ≈ 2.1, near-planar, long diameter.
func GenerateRoad(n int, seed uint64) *Graph {
	g, _ := gen.RoadNetwork(n, seed)
	return g
}

// GenerateKmer returns a GenBank-style protein k-mer graph: long chains
// with occasional branch vertices, average degree ≈ 2.1.
func GenerateKmer(n int, seed uint64) *Graph {
	g, _ := gen.KmerGraph(n, seed)
	return g
}

// GeneratePlanted returns an LFR-style planted-partition graph with
// power-law community sizes — the standard benchmark with known ground
// truth. mixing is μ; the returned slice is the planted membership.
func GeneratePlanted(n, communities int, avgDegree, mixing float64, seed uint64) (*Graph, []uint32) {
	g, m := gen.PlantedPartition(gen.PlantedConfig{
		N:            n,
		Communities:  communities,
		MinSize:      n / (4 * communities),
		MaxSize:      n,
		SizeExponent: 2,
		AvgDegree:    avgDegree,
		Mixing:       mixing,
		Seed:         seed,
	})
	return g, m
}
