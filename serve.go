package gveleiden

import (
	"gveleiden/internal/serve"
)

// Serving. The internal/serve package turns detection into a resident
// service: one graph loaded, queries answered from an immutable
// snapshot behind an atomic pointer, delta ingests folded into fresh
// snapshots by a background warm-started dynamic Leiden run, each
// candidate gated by the correctness oracle before the swap. The
// cmd/gveserve binary is the standalone server; the types below let a
// Go program embed the same machinery or speak to a running instance.

// ServeConfig configures an embedded community-detection server.
type ServeConfig = serve.Config

// ServeSnapshot is one immutable published state: graph, partition,
// dendrogram, and the derived query indexes.
type ServeSnapshot = serve.Snapshot

// Server is the resident community-detection service. Mount Handler on
// an http.Server; Ingest/Kick drive recomputes programmatically; Close
// stops the background worker.
type Server = serve.Server

// ServeClient is a typed HTTP client for a gveserve instance.
type ServeClient = serve.Client

// ServeEdgeUpdate is one edge of a delta batch on the wire.
type ServeEdgeUpdate = serve.EdgeUpdate

// ServeStats is the /stats response: snapshot shape, quality, and
// serving counters.
type ServeStats = serve.StatsResponse

// DefaultServeConfig returns the serving defaults: paper options,
// frontier warm starts, 100k-edge batches, 8 MiB bodies, 0.25
// modularity-drop budget on the oracle gate.
func DefaultServeConfig() ServeConfig { return serve.DefaultConfig() }

// NewServer builds the initial snapshot synchronously (a cold
// hierarchy run, oracle-gated) and starts the recompute worker.
func NewServer(g *Graph, cfg ServeConfig) (*Server, error) { return serve.New(g, cfg) }

// NewServeClient returns a client for the gveserve instance at base,
// e.g. "http://127.0.0.1:8080".
func NewServeClient(base string) *ServeClient { return serve.NewClient(base) }
