// Command benchjson emits the machine-readable benchmark artifact
// committed with a PR: pool-vs-spawn runtime microbenchmarks plus an
// end-to-end Leiden timing per dataset class.
//
//	benchjson -o BENCH_PR1.json -scale 0.15 -repeat 3
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"gveleiden/internal/bench"
)

func main() {
	var (
		out     = flag.String("o", "BENCH_PR1.json", "output path")
		scale   = flag.Float64("scale", 0.15, "dataset size multiplier")
		repeat  = flag.Int("repeat", 3, "e2e repeats (best-of)")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		note    = flag.String("note", "persistent work-stealing pool vs per-call goroutine spawning", "free-form note")
	)
	flag.Parse()

	report := bench.BenchReport{
		PR:         "PR1",
		Note:       *note,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Micro:      bench.RuntimeMicro([]int{2, 4, 8}),
		E2E:        bench.E2EBench(*scale, *repeat, *threads),
	}
	if err := report.WriteJSON(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	for _, m := range report.Micro {
		fmt.Printf("micro %-16s t=%d  pool %8.0f ns/op  spawn %8.0f ns/op  %.1fx\n",
			m.Name, m.Threads, m.PoolNsPerOp, m.SpawnNsOp, m.Speedup)
	}
	for _, e := range report.E2E {
		fmt.Printf("e2e   %-16s t=%d  %8.1f ms  Q=%.4f  C=%d\n",
			e.Dataset, e.Threads, e.BestMs, e.Modularity, e.Communities)
	}
	fmt.Println("wrote", *out)
}
