// Command benchjson emits the machine-readable benchmark artifact
// committed with a PR: pool-vs-spawn runtime microbenchmarks plus an
// end-to-end Leiden timing per dataset class.
//
//	benchjson -o BENCH_PR2.json -scale 0.15 -repeat 3
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"gveleiden/internal/bench"
)

func main() {
	var (
		out     = flag.String("o", "BENCH_PR2.json", "output path")
		scale   = flag.Float64("scale", 0.15, "dataset size multiplier")
		repeat  = flag.Int("repeat", 3, "e2e repeats (best-of)")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		note    = flag.String("note", "observability layer: phase splits and pool scheduler counters per e2e run", "free-form note")
	)
	flag.Parse()

	report := bench.BenchReport{
		PR:         "PR2",
		Note:       *note,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Micro:      bench.RuntimeMicro([]int{2, 4, 8}),
		E2E:        bench.E2EBench(*scale, *repeat, *threads),
	}
	if err := report.WriteJSON(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	for _, m := range report.Micro {
		fmt.Printf("micro %-16s t=%d  pool %8.0f ns/op  spawn %8.0f ns/op  %.1fx\n",
			m.Name, m.Threads, m.PoolNsPerOp, m.SpawnNsOp, m.Speedup)
	}
	for _, e := range report.E2E {
		fmt.Printf("e2e   %-16s t=%d  %8.1f ms  Q=%.4f  C=%d  move/refine/agg/other %.0f/%.0f/%.0f/%.0f%%  steals=%d\n",
			e.Dataset, e.Threads, e.BestMs, e.Modularity, e.Communities,
			e.Split.Move*100, e.Split.Refine*100, e.Split.Aggregate*100, e.Split.Other*100,
			e.Pool.Steals)
	}
	fmt.Println("wrote", *out)
}
