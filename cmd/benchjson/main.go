// Command benchjson emits the machine-readable benchmark artifact
// committed with a PR: pool-vs-spawn runtime microbenchmarks, an
// end-to-end Leiden timing per dataset class, and (with -scaling) the
// million-vertex strong-scaling sweep over the streamed graph classes
// plus the move-phase kernel ablation.
//
//	benchjson -o BENCH_PR2.json -scale 0.15 -repeat 3
//	benchjson -pr PR6 -o BENCH_PR6.json -scaling -scalen 1000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gveleiden/internal/bench"
)

func main() {
	var (
		out       = flag.String("o", "BENCH_PR6.json", "output path")
		pr        = flag.String("pr", "PR6", "PR tag recorded in the report")
		scale     = flag.Float64("scale", 0.15, "dataset size multiplier for the e2e corpus")
		repeat    = flag.Int("repeat", 3, "repeats (best-of)")
		threads   = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		scaling   = flag.Bool("scaling", false, "run the streamed-class strong-scaling sweep and kernel ablation")
		scaleN    = flag.Int("scalen", 1_000_000, "vertices per streamed class in the -scaling sweep")
		maxThr    = flag.Int("maxthreads", 0, "strong-scaling sweep bound (0 = NumCPU)")
		classes   = flag.String("classes", "", "comma-separated streamed classes for -scaling (empty = all)")
		telemetry = flag.Bool("telemetry", false, "measure the continuous-telemetry overhead (telemetry-on vs telemetry-off run)")
		telN      = flag.Int("teln", 200_000, "vertices for the -telemetry probe graph")
		note      = flag.String("note", "streamed million-vertex generation, move-phase hot-path kernels, strong-scaling sweep", "free-form note")
	)
	flag.Parse()

	report := bench.NewBenchReport(*pr, *note)
	report.Micro = bench.RuntimeMicro([]int{2, 4, 8})
	report.E2E = bench.E2EBench(*scale, *repeat, *threads)
	if *telemetry {
		rec := bench.TelemetryOverhead(*telN, *repeat, *threads)
		report.Telemetry = &rec
	}
	if *scaling {
		var want []string
		if *classes != "" {
			for _, c := range strings.Split(*classes, ",") {
				want = append(want, strings.TrimSpace(c))
			}
		}
		report.Scaling = bench.StrongScaling(*scaleN, 6, *maxThr, *repeat, want)
		// Ablation at a tenth of the sweep size: the kernel effects are
		// per-vertex and show at any scale, and four configs per class at
		// full size would dominate the harness time.
		report.Ablation = bench.MoveAblation(*scaleN/10, 6, *threads, *repeat, want)
	}
	if err := report.WriteJSON(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	for _, m := range report.Micro {
		fmt.Printf("micro %-16s t=%d  pool %8.0f ns/op  spawn %8.0f ns/op  %.1fx\n",
			m.Name, m.Threads, m.PoolNsPerOp, m.SpawnNsOp, m.Speedup)
	}
	for _, e := range report.E2E {
		fmt.Printf("e2e   %-16s t=%d  %8.1f ms  Q=%.4f  C=%d  move/refine/agg/other %.0f/%.0f/%.0f/%.0f%%  steals=%d\n",
			e.Dataset, e.Threads, e.BestMs, e.Modularity, e.Communities,
			e.Split.Move*100, e.Split.Refine*100, e.Split.Aggregate*100, e.Split.Other*100,
			e.Pool.Steals)
	}
	for _, c := range report.Scaling {
		fmt.Printf("scale %-8s |V|=%d |E|=%d  gen %.0f ms  reorder %.0f ms\n",
			c.Class, c.Vertices, c.Arcs, c.GenMs, c.ReorderMs)
		for _, p := range c.Points {
			fmt.Printf("      t=%d  %8.1f ms  %.2fx  Q=%.4f  move=%.0f%%  prune-hit=%.2f  flat=%d  steals=%d\n",
				p.Threads, p.BestMs, p.Speedup, p.Modularity,
				p.Split.Move*100, p.PruningHitRate, p.FlatScans, p.Pool.Steals)
		}
	}
	for _, a := range report.Ablation {
		fmt.Printf("abl   %-8s %-12s t=%d  %8.1f ms  rel=%.2f  Q=%.4f  prune-hit=%.2f  flat=%d\n",
			a.Class, a.Config, a.Threads, a.BestMs, a.RelTime, a.Modularity, a.PruningHitRate, a.FlatScans)
	}
	if report.Telemetry != nil {
		tr := report.Telemetry
		fmt.Printf("tel   n=%d t=%d  off %8.1f ms  on %8.1f ms  overhead %+.1f%%\n",
			tr.Vertices, tr.Threads, tr.BaseMs, tr.TelemeteredMs, tr.OverheadPct)
	}
	fmt.Println("wrote", *out)
}
