// Command benchcmp diffs two benchmark report artifacts (the
// BENCH_*.json files benchjson emits) and exits nonzero when the new
// report regresses on the old one — the gate CI runs against the
// committed baseline.
//
//	benchcmp BENCH_PR6.json BENCH_NEW.json
//	benchcmp -time-tolerance 3.0 old.json new.json   # lenient for shared runners
//
// Matching is by dataset name and graph size, so reports generated at
// different -scale factors never compare different workloads. Timings
// are compared only when thread counts match; modularity always is.
// Exit status: 0 clean (with a warning if nothing was comparable),
// 1 on regression or I/O error, 2 on usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"gveleiden/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	timeTol := fs.Float64("time-tolerance", 0.25, "allowed fractional slowdown in best_ms (0.25 = 25%)")
	qualTol := fs.Float64("quality-tolerance", 0.02, "allowed absolute modularity drop")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [flags] OLD.json NEW.json")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	old, err := bench.LoadReport(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		return 1
	}
	new, err := bench.LoadReport(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		return 1
	}
	d := bench.DiffReports(old, new, bench.DiffOptions{
		TimeTolerance:    *timeTol,
		QualityTolerance: *qualTol,
	})
	fmt.Printf("benchcmp %s (%s) vs %s (%s)\n", fs.Arg(0), old.PR, fs.Arg(1), new.PR)
	d.Render(os.Stdout)
	if !d.Comparable() {
		fmt.Println("warning: no comparable e2e records between the reports")
		return 0
	}
	if reg := d.Regressions(); len(reg) > 0 {
		fmt.Printf("%d regression(s)\n", len(reg))
		return 1
	}
	fmt.Printf("%d record(s) compared, no regressions\n", len(d.Entries))
	return 0
}
