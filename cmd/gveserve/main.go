// Command gveserve is the resident community-detection server: it
// loads (or generates) a graph once, runs GVE-Leiden, and answers
// structural queries over HTTP from an immutable snapshot — community
// membership, community rosters, intra-community neighbourhoods,
// hierarchy drill-down, partition statistics. Edge deltas ingested via
// POST /delta are folded into fresh snapshots by a background
// warm-started dynamic Leiden run, each gated by the correctness
// oracle before the atomic swap.
//
//	gveserve -gen social -n 100000 -addr :8080
//	gveserve -i graph.mtx -addr 127.0.0.1:8080 -mode frontier
//	gveserve -gen web -n 50000 -rebuild-interval 5m -log-format json
//
// Endpoints:
//
//	GET  /community?v=ID     community of a vertex (+ size)
//	GET  /members?c=ID       sorted members of a community (&limit=N)
//	GET  /neighbors?v=ID     intra-community neighbours of a vertex
//	GET  /hierarchy?v=ID     community at every dendrogram depth
//	GET  /stats              snapshot shape, quality, serving counters
//	POST /delta              ingest {"insertions":[{"u","v","w"}],"deletions":[...]}
//	POST /recompute          force a snapshot rebuild
//	GET  /metrics /metrics.json /healthz /debug/flight /debug/vars /debug/pprof/...
//
// SIGINT/SIGTERM drain in-flight requests, let any running recompute
// finish (bounded), and exit 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gveleiden/internal/core"
	"gveleiden/internal/gen"
	"gveleiden/internal/graph"
	"gveleiden/internal/graph/gvecsr"
	"gveleiden/internal/observe"
	"gveleiden/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type config struct {
	input, genName  string
	n               int
	seed            uint64
	addr            string
	threads         int
	mode            string
	maxBatch        int
	maxBody         int64
	qualityDrop     float64
	rebuildInterval time.Duration
	logFormat       string
	flightSize      int
	sampleInterval  time.Duration
	resolution      float64
}

func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("gveserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	c := &config{}
	fs.StringVar(&c.input, "i", "", "input graph file (.gvecsr, .mtx, .bin, or edge list)")
	fs.StringVar(&c.genName, "gen", "", "generate input instead: web|social|road|kmer|er|ba|rmat")
	fs.IntVar(&c.n, "n", 100000, "vertices for generated input")
	fs.Uint64Var(&c.seed, "seed", 1, "generator seed")
	fs.StringVar(&c.addr, "addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	fs.IntVar(&c.threads, "threads", 0, "worker threads for detection runs (0 = GOMAXPROCS)")
	fs.StringVar(&c.mode, "mode", "frontier", "warm-start strategy for recomputes: naive|frontier")
	fs.IntVar(&c.maxBatch, "max-batch", 100000, "max insertions+deletions per delta request")
	fs.Int64Var(&c.maxBody, "max-body", 8<<20, "max request body bytes")
	fs.Float64Var(&c.qualityDrop, "quality-drop", 0.25, "oracle gate: max modularity drop vs the published snapshot")
	fs.DurationVar(&c.rebuildInterval, "rebuild-interval", 0, "periodic snapshot rebuild even without ingests (0 = off)")
	fs.StringVar(&c.logFormat, "log-format", "", "structured swap/ingest logging to stderr: json|text (empty = off)")
	fs.IntVar(&c.flightSize, "flight", observe.DefaultFlightSize, "flight-recorder capacity: last N recomputes kept for /debug/flight")
	fs.DurationVar(&c.sampleInterval, "sample-interval", observe.DefaultSampleInterval, "runtime-metrics poll interval")
	fs.Float64Var(&c.resolution, "resolution", 1.0, "modularity resolution γ for detection runs")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return c, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	c, err := parseFlags(args, stderr)
	if err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "gveserve: %v\n", err)
		return 1
	}
	usageErr := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "gveserve: "+format+"\n", a...)
		return 2
	}
	if c.threads < 0 {
		return usageErr("-threads must be >= 0, got %d", c.threads)
	}
	if c.maxBatch < 1 {
		return usageErr("-max-batch must be >= 1, got %d", c.maxBatch)
	}
	if c.maxBody < 1 {
		return usageErr("-max-body must be >= 1, got %d", c.maxBody)
	}
	if !(c.resolution > 0) {
		return usageErr("-resolution must be positive, got %g", c.resolution)
	}

	cfg := serve.DefaultConfig()
	cfg.Options.Threads = c.threads
	cfg.Options.Resolution = c.resolution
	cfg.MaxBatch = c.maxBatch
	cfg.MaxBody = c.maxBody
	cfg.MaxQualityDrop = c.qualityDrop
	cfg.RebuildInterval = c.rebuildInterval
	cfg.FlightSize = c.flightSize
	switch c.mode {
	case "naive":
		cfg.Mode = core.DynamicNaive
	case "frontier":
		cfg.Mode = core.DynamicFrontier
	default:
		return usageErr("unknown mode %q (want naive or frontier)", c.mode)
	}
	if c.logFormat != "" {
		cfg.Logger = observe.NewLogger(stderr, c.logFormat, slog.LevelInfo)
	}
	sampler := observe.NewSampler(c.sampleInterval)
	cfg.ExtraMetrics = sampler.AddTo

	g, err := loadOrGenerate(c.input, c.genName, c.n, c.seed)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "graph: |V|=%d |E|=%d\n", g.NumVertices(), g.NumUndirectedEdges())

	buildStart := time.Now()
	s, err := serve.New(g, cfg)
	if err != nil {
		return fail(err)
	}
	snap := s.Snapshot()
	fmt.Fprintf(stdout, "initial snapshot: %d communities, modularity %.6f, %s\n",
		snap.Result.NumCommunities, snap.Result.Modularity,
		time.Since(buildStart).Round(time.Millisecond))

	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		s.Close(context.Background())
		return fail(err)
	}
	httpSrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			serveErr <- err
		}
		close(serveErr)
	}()
	sampler.Start()
	fmt.Fprintf(stdout, "serving on http://%s (community, members, neighbors, hierarchy, stats, delta, recompute, metrics, healthz)\n",
		ln.Addr().String())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	select {
	case err, ok := <-serveErr:
		sampler.Stop()
		if ok && err != nil {
			return fail(err)
		}
		return 0
	case sig := <-sigCh:
		fmt.Fprintf(stdout, "received %v; draining\n", sig)
	}

	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// stop the recompute worker (a run in flight finishes first, up to
	// the bound below — past it the worker is abandoned and the process
	// exits anyway).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "gveserve: http shutdown: %v\n", err)
	}
	cancel()
	if err, ok := <-serveErr; ok && err != nil {
		fmt.Fprintf(stderr, "gveserve: serve: %v\n", err)
	}
	ctx, cancel = context.WithTimeout(context.Background(), 30*time.Second)
	if err := s.Close(ctx); err != nil {
		fmt.Fprintf(stderr, "gveserve: %v\n", err)
	}
	cancel()
	sampler.Stop()
	fmt.Fprintln(stdout, "shutdown complete")
	return 0
}

func loadOrGenerate(input, genName string, n int, seed uint64) (*graph.CSR, error) {
	if input != "" {
		// Containers are memory-mapped (gvecsr.Open): the server keeps
		// the snapshot's base graph for its whole lifetime, so the
		// mapping is never unmapped — and restarts reload in
		// milliseconds instead of re-parsing text.
		f, err := gvecsr.LoadAny(input)
		if err != nil {
			return nil, err
		}
		return f.Graph()
	}
	switch genName {
	case "web":
		g, _ := gen.WebGraph(n, 20, seed)
		return g, nil
	case "social":
		g, _ := gen.SocialNetwork(n, 20, 64, 0.35, seed)
		return g, nil
	case "road":
		g, _ := gen.RoadNetwork(n, seed)
		return g, nil
	case "kmer":
		g, _ := gen.KmerGraph(n, seed)
		return g, nil
	case "er":
		return gen.ErdosRenyi(n, n*8, seed), nil
	case "ba":
		return gen.BarabasiAlbert(n, 8, seed), nil
	case "rmat":
		scale := 0
		for 1<<scale < n {
			scale++
		}
		return gen.RMAT(scale, n*8, 0, 0, 0, seed), nil
	case "":
		return nil, fmt.Errorf("need -i FILE or -gen NAME (web|social|road|kmer|er|ba|rmat)")
	default:
		return nil, fmt.Errorf("unknown generator %q", genName)
	}
}
