// Command benchall regenerates every table and figure of the paper's
// evaluation section plus the extension experiments (see DESIGN.md §4
// and §4b for the index):
//
//	benchall                    # run the full suite
//	benchall -exp fig6,table1   # run selected experiments
//	benchall -scale 2 -repeat 5 # bigger corpus, tighter averaging
//	benchall -o report.txt      # also write the report to a file
//	benchall -csv out/          # also write one CSV per table
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gveleiden/internal/bench"
)

func main() {
	var (
		expList = flag.String("exp", "all", "comma-separated experiments: table1,table2,fig1,fig3,fig6,fig7,fig8,fig9,quality,dynamic,ablation,cpm,profile,ordering,lpa,memory,complexity,scaling,storage or 'all'")
		scale   = flag.Float64("scale", 1.0, "dataset size multiplier")
		repeat  = flag.Int("repeat", 3, "measurement repeats (paper uses 5)")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		maxThr  = flag.Int("maxthreads", 0, "strong-scaling sweep bound (0 = GOMAXPROCS)")
		out     = flag.String("o", "", "also write the report to this file")
		csvDir  = flag.String("csv", "", "also write one CSV per table into this directory")
	)
	flag.Parse()

	cfg := bench.Config{
		Scale:      *scale,
		Repeats:    *repeat,
		Threads:    *threads,
		MaxThreads: *maxThr,
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expList, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]

	var report strings.Builder
	var tables []bench.Table
	emit := func(ts []bench.Table) {
		text := bench.RenderAll(ts)
		fmt.Print(text + "\n")
		report.WriteString(text + "\n")
		tables = append(tables, ts...)
	}

	start := time.Now()
	header := fmt.Sprintf("GVE-Leiden evaluation harness  (scale=%.2g repeats=%d threads=%d)\n",
		*scale, *repeat, *threads)
	fmt.Println(header)
	report.WriteString(header + "\n")

	if all || want["table2"] {
		emit(bench.Table2(cfg))
	}
	var cmp []bench.CompareResult
	if all || want["fig6"] || want["table1"] {
		cmp = bench.RunComparison(cfg)
	}
	if all || want["fig6"] {
		emit(bench.Fig6(cmp))
	}
	if all || want["table1"] {
		emit(bench.Table1(cmp))
	}
	if all || want["fig1"] || want["fig2"] {
		emit(bench.Fig1And2(cfg))
	}
	if all || want["fig3"] || want["fig4"] {
		emit(bench.Fig3And4(cfg))
	}
	if all || want["fig7"] {
		emit(bench.Fig7(cfg))
	}
	if all || want["fig8"] {
		emit(bench.Fig8(cfg))
	}
	if all || want["fig9"] {
		emit(bench.Fig9(cfg))
	}
	if all || want["quality"] {
		emit(bench.Fig8Quality(cfg))
	}
	if all || want["dynamic"] {
		emit(bench.DynamicExperiment(cfg))
	}
	if all || want["ablation"] {
		emit(bench.AblationExperiment(cfg))
	}
	if all || want["cpm"] {
		emit(bench.CPMExperiment(cfg))
	}
	if all || want["profile"] {
		emit(bench.ProfileExperiment(cfg))
	}
	if all || want["ordering"] {
		emit(bench.OrderingExperiment(cfg))
	}
	if all || want["lpa"] {
		emit(bench.LPAExperiment(cfg))
	}
	if all || want["memory"] {
		emit(bench.MemoryExperiment(cfg))
	}
	if all || want["complexity"] {
		emit(bench.ComplexityExperiment(cfg))
	}
	if all || want["scaling"] {
		emit(bench.ScalingExperiment(cfg))
	}
	if all || want["storage"] {
		emit(bench.StorageExperiment(cfg))
	}
	footer := fmt.Sprintf("total harness time: %s", time.Since(start).Round(time.Millisecond))
	fmt.Println(footer)
	report.WriteString(footer + "\n")

	if *out != "" {
		if err := os.WriteFile(*out, []byte(report.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if *csvDir != "" {
		if err := writeCSVs(*csvDir, tables); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d CSV files to %s\n", len(tables), *csvDir)
	}
}

func writeCSVs(dir string, tables []bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range tables {
		data, err := t.CSV()
		if err != nil {
			return fmt.Errorf("rendering %s: %w", t.ID, err)
		}
		path := filepath.Join(dir, t.ID+".csv")
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			return err
		}
	}
	return nil
}
