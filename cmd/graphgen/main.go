// Command graphgen emits the synthetic benchmark corpus (or a single
// generated graph) to files, so experiments can be repeated against
// fixed inputs or fed to other tools.
//
//	graphgen -corpus -dir data/           # write all 13 corpus graphs
//	graphgen -gen web -n 50000 -o web.mtx # one graph, Matrix Market
//	graphgen -gen road -n 50000 -format bin -o road.bin
//	graphgen -gen road -n 50000 -o road.gvecsr # mmap-able binary container
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gveleiden/internal/bench"
	"gveleiden/internal/gen"
	"gveleiden/internal/graph"
	"gveleiden/internal/graph/gvecsr"
)

func main() {
	var (
		corpus  = flag.Bool("corpus", false, "emit the full 13-graph benchmark corpus")
		dir     = flag.String("dir", ".", "output directory for -corpus")
		scale   = flag.Float64("scale", 1.0, "corpus size multiplier")
		genName = flag.String("gen", "", "single graph: web|social|road|kmer|er|ba|rmat|grid")
		n       = flag.Int("n", 100000, "vertices")
		seed    = flag.Uint64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output file for -gen")
		format  = flag.String("format", "", "mtx|bin|edges|gvecsr (default from -o extension)")
	)
	flag.Parse()

	if *corpus {
		if err := emitCorpus(*dir, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *genName == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "graphgen: need -corpus, or -gen NAME with -o FILE")
		os.Exit(2)
	}
	g, err := build(*genName, *n, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	if err := write(g, *out, *format); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: |V|=%d |E|=%d\n", *out, g.NumVertices(), g.NumUndirectedEdges())
}

func emitCorpus(dir string, scale float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, d := range bench.Registry(scale) {
		g, _ := bench.Load(d)
		path := filepath.Join(dir, d.Name+".mtx")
		if err := write(g, path, "mtx"); err != nil {
			return err
		}
		fmt.Println(bench.Describe(d.Name, g))
	}
	return nil
}

func build(name string, n int, seed uint64) (*graph.CSR, error) {
	switch name {
	case "web":
		g, _ := gen.WebGraph(n, 20, seed)
		return g, nil
	case "social":
		g, _ := gen.SocialNetwork(n, 20, 64, 0.35, seed)
		return g, nil
	case "road":
		g, _ := gen.RoadNetwork(n, seed)
		return g, nil
	case "kmer":
		g, _ := gen.KmerGraph(n, seed)
		return g, nil
	case "er":
		return gen.ErdosRenyi(n, n*8, seed), nil
	case "ba":
		return gen.BarabasiAlbert(n, 8, seed), nil
	case "rmat":
		scale := 0
		for 1<<scale < n {
			scale++
		}
		return gen.RMAT(scale, n*8, 0, 0, 0, seed), nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return gen.Grid(side, side), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", name)
	}
}

func write(g *graph.CSR, path, format string) error {
	if format == "" {
		switch {
		case strings.HasSuffix(path, ".mtx"):
			format = "mtx"
		case strings.HasSuffix(path, ".bin"):
			format = "bin"
		case strings.HasSuffix(path, gvecsr.Ext):
			format = "gvecsr"
		default:
			format = "edges"
		}
	}
	if format == "gvecsr" {
		return gvecsr.WriteFile(path, g, gvecsr.WriteOptions{})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "mtx":
		return graph.WriteMatrixMarket(f, g)
	case "bin":
		return graph.WriteBinary(f, g)
	case "edges":
		return graph.WriteEdgeList(f, g)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}
