// Package dirty is a gvevet exit-code fixture: it violates the padsize
// invariant (an annotated padded type whose size is not a multiple of
// the cache line), so gvevet must exit 1 on it.
package dirty

// bad claims to be a per-worker padded slot but is 8 bytes.
//
//gvevet:padded
type bad struct {
	n int64
}

// Use keeps the type referenced.
func Use(b *bad) int64 {
	return b.n
}
