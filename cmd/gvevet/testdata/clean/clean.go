// Package clean is a gvevet exit-code fixture: no findings, exit 0.
package clean

// Answer is deliberately boring code the full suite has nothing to say
// about.
func Answer() int {
	return 42
}
