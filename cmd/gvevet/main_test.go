package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestExitCodeContract pins the exit codes CI relies on: 0 clean, 1
// findings, 2 load/usage error — across the static, callgraph and
// contracts modes.
func TestExitCodeContract(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks fixture packages")
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean tree", []string{"./testdata/clean"}, 0},
		{"findings", []string{"./testdata/dirty"}, 1},
		{"findings as json", []string{"-json", "./testdata/dirty"}, 1},
		{"callgraph mode clean", []string{"-callgraph", "./testdata/clean"}, 0},
		{"contracts mode clean", []string{"-contracts", "./testdata/clean"}, 0},
		// padsize is not in the interprocedural subset, so the dirty
		// fixture is clean under -contracts -callgraph.
		{"contracts with callgraph subset", []string{"-contracts", "-callgraph", "./testdata/dirty"}, 0},
		{"load error", []string{"./testdata/nosuchpkg"}, 2},
		{"usage error", []string{"-nosuchflag"}, 2},
		{"list", []string{"-list"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, &stdout, &stderr)
			if got != tc.want {
				t.Errorf("run(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, got, tc.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestDirtyFindingShape checks the text and JSON renderings of a
// finding agree on position and analyzer.
func TestDirtyFindingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks fixture packages")
	}
	var text, jsonBuf, stderr bytes.Buffer
	if got := run([]string{"./testdata/dirty"}, &text, &stderr); got != 1 {
		t.Fatalf("text run exited %d, want 1 (stderr: %s)", got, stderr.String())
	}
	if !strings.Contains(text.String(), "padsize") || !strings.Contains(text.String(), "dirty.go") {
		t.Errorf("text output missing analyzer or file: %q", text.String())
	}
	if got := run([]string{"-json", "./testdata/dirty"}, &jsonBuf, &stderr); got != 1 {
		t.Fatalf("json run exited %d, want 1", got)
	}
	var findings []struct {
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &findings); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, jsonBuf.String())
	}
	if len(findings) == 0 || findings[0].Analyzer != "padsize" {
		t.Errorf("json findings = %+v, want a padsize finding", findings)
	}
}

// TestListNamesAllAnalyzers: -list must enumerate the full suite.
func TestListNamesAllAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-list"}, &stdout, &stderr); got != 0 {
		t.Fatalf("-list exited %d", got)
	}
	for _, name := range []string{"atomic-mix", "goleak", "hotalloc", "nilrecv", "padcopy", "padsize", "nodeterm"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}
