// Command gvevet runs this repository's concurrency-invariant analyzer
// suite (internal/lint) over Go packages and reports findings in the
// familiar file:line:col format. Its exit code is a contract CI relies
// on:
//
//	0  the tree is clean
//	1  at least one finding survived suppression
//	2  load, build, or usage error (the analysis could not run)
//
// Modes:
//
//	gvevet ./...              full static suite (default)
//	gvevet -callgraph ./...   only the interprocedural analyzers
//	                          (atomic-mix, goleak, padcopy)
//	gvevet -contracts ./...   only //gvevet:contract enforcement against
//	                          `go build -gcflags='-m=2 -d=ssa/check_bce'`
//	                          optimizer diagnostics
//
// -contracts and -callgraph combine; with both set the two suites run
// together. Flags:
//
//	-json         emit findings as a JSON array instead of text
//	-list         print the analyzer suite and exit
//	-tests        include _test.go files in the analysis
//	-facts FILE   (with -contracts) write the parsed optimizer facts as
//	              JSON — the CI artifact diffed across PRs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"gveleiden/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process boundary removed, so the exit-code
// contract is table-testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gvevet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "print the analyzer suite and exit")
	tests := fs.Bool("tests", false, "include _test.go files")
	contracts := fs.Bool("contracts", false, "enforce //gvevet:contract against compiler optimizer diagnostics")
	callgraph := fs.Bool("callgraph", false, "run only the interprocedural (call-graph) analyzers")
	factsOut := fs.String("facts", "", "with -contracts: write parsed optimizer facts to this JSON file")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: gvevet [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *callgraph {
		analyzers = lint.Interprocedural()
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.Load(lint.LoadConfig{Patterns: patterns, Tests: *tests})
	if err != nil {
		fmt.Fprintf(stderr, "gvevet: %v\n", err)
		return 2
	}

	var findings []lint.Finding
	runStatic := !*contracts || *callgraph
	if runStatic {
		findings = lint.Run(prog, analyzers)
	}
	if *contracts {
		facts, err := lint.CompileFacts("", patterns)
		if err != nil {
			fmt.Fprintf(stderr, "gvevet: %v\n", err)
			return 2
		}
		if *factsOut != "" {
			if err := writeFacts(*factsOut, facts); err != nil {
				fmt.Fprintf(stderr, "gvevet: %v\n", err)
				return 2
			}
		}
		_, contractFindings := lint.CheckContracts(prog, facts)
		findings = append(findings, contractFindings...)
		lint.SortFindings(findings)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "gvevet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "gvevet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// writeFacts dumps the optimizer facts as indented JSON.
func writeFacts(path string, facts []lint.Fact) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(facts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
