// Command gvevet runs this repository's concurrency-invariant analyzer
// suite (internal/lint) over Go packages and reports findings in the
// familiar file:line:col format. It exits 0 when the tree is clean, 1
// when any finding survives suppression, and 2 on load or usage errors,
// so CI can gate merges on it:
//
//	go run ./cmd/gvevet ./...
//
// Flags:
//
//	-json   emit findings as a JSON array instead of text
//	-list   print the analyzer suite and exit
//	-tests  include _test.go files in the analysis
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gveleiden/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	tests := flag.Bool("tests", false, "include _test.go files")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gvevet [flags] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.Load(lint.LoadConfig{Patterns: patterns, Tests: *tests})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gvevet: %v\n", err)
		os.Exit(2)
	}

	findings := lint.Run(prog, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "gvevet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "gvevet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
