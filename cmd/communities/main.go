// Command communities analyzes a community assignment against its
// graph: per-partition quality (modularity, coverage, performance,
// conductance), community-size distribution, and the
// internally-disconnected-community check of the paper's Figure 6(d).
//
//	communities -g graph.mtx -m membership.txt      # analyze a saved run
//	communities -g graph.mtx                        # run GVE-Leiden first
//	communities -g graph.mtx -top 10                # largest communities
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gveleiden/internal/core"
	"gveleiden/internal/graph/gvecsr"
	"gveleiden/internal/quality"
)

func main() {
	var (
		graphPath = flag.String("g", "", "graph file (.gvecsr, .mtx, .bin, or edge list)")
		membPath  = flag.String("m", "", "membership file ('vertex community' lines); empty = run GVE-Leiden")
		top       = flag.Int("top", 5, "show the N largest communities")
		threads   = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "communities: need -g GRAPH")
		os.Exit(2)
	}
	gf, err := gvecsr.LoadAny(*graphPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "communities: %v\n", err)
		os.Exit(1)
	}
	g, err := gf.Graph()
	if err != nil {
		fmt.Fprintf(os.Stderr, "communities: %v\n", err)
		os.Exit(1)
	}
	var membership []uint32
	if *membPath != "" {
		membership, err = readMembership(*membPath, g.NumVertices())
		if err != nil {
			fmt.Fprintf(os.Stderr, "communities: %v\n", err)
			os.Exit(1)
		}
	} else {
		opt := core.DefaultOptions()
		opt.Threads = *threads
		membership = core.Leiden(g, opt).Membership
		fmt.Println("(no -m given: communities detected with GVE-Leiden)")
	}

	pm := quality.AnalyzePartition(g, membership)
	fmt.Printf("graph: |V|=%d |E|=%d\n", g.NumVertices(), g.NumUndirectedEdges())
	fmt.Printf("communities:     %d\n", pm.Communities)
	fmt.Printf("modularity:      %.6f\n", pm.Modularity)
	fmt.Printf("coverage:        %.4f\n", pm.Coverage)
	fmt.Printf("performance:     %.4f\n", pm.Performance)
	fmt.Printf("conductance:     avg %.4f  max %.4f\n", pm.AvgConductance, pm.MaxConductance)
	fmt.Printf("sizes:           min %d  median %d  max %d\n", pm.MinSize, pm.MedianSize, pm.MaxSize)
	fmt.Printf("disconnected:    %d", pm.Disconnected)
	if pm.Disconnected == 0 {
		fmt.Printf("  ✓ (the Leiden guarantee)")
	}
	fmt.Println()

	hist := quality.SizeHistogram(membership)
	fmt.Println("\nsize distribution (2^k buckets):")
	for b, c := range hist {
		if c == 0 {
			continue
		}
		fmt.Printf("  %6d-%-6d %d\n", 1<<b, 1<<(b+1)-1, c)
	}

	ms := quality.AnalyzeCommunities(g, membership)
	sort.Slice(ms, func(a, b int) bool { return ms[a].Size > ms[b].Size })
	if *top > len(ms) {
		*top = len(ms)
	}
	fmt.Printf("\n%d largest communities:\n", *top)
	fmt.Println("  id      size    internal  cut     density  conductance  connected")
	for _, m := range ms[:*top] {
		fmt.Printf("  %-7d %-7d %-9.1f %-7.1f %-8.4f %-12.4f %v\n",
			m.ID, m.Size, m.Internal, m.Cut, m.Density, m.Conductance, m.Connected)
	}
}

func readMembership(path string, n int) ([]uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return quality.ReadPartition(f, n)
}
