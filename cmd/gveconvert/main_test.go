package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gveleiden/internal/graph"
	"gveleiden/internal/graph/gvecsr"
	"gveleiden/internal/order"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("gveconvert %v exited %d: %s", args, code, errb.String())
	}
	return out.String()
}

func writeEdgeList(t *testing.T, dir string, g *graph.CSR) string {
	t.Helper()
	path := filepath.Join(dir, "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := graph.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func smallGraph() *graph.CSR {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 2)
	b.AddEdge(0, 3, 1)
	b.AddEdge(1, 2, 0.5)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 4)
	return b.Build()
}

func TestConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := smallGraph()
	in := writeEdgeList(t, dir, g)
	out := filepath.Join(dir, "g"+gvecsr.Ext)
	runOK(t, "-i", in, "-o", out)

	f, err := gvecsr.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := f.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != g.NumVertices() || len(got.Edges) != len(g.Edges) {
		t.Fatalf("converted graph shape |V|=%d m=%d, want |V|=%d m=%d",
			got.NumVertices(), len(got.Edges), g.NumVertices(), len(g.Edges))
	}
	for i := range g.Edges {
		if g.Edges[i] != got.Edges[i] || g.Weights[i] != got.Weights[i] {
			t.Fatalf("arc %d differs", i)
		}
	}
}

func TestConvertCompressAndPerm(t *testing.T) {
	dir := t.TempDir()
	g := smallGraph()
	in := writeEdgeList(t, dir, g)
	out := filepath.Join(dir, "p"+gvecsr.Ext)
	runOK(t, "-i", in, "-o", out, "-compress", "-perm", "degree")

	f, err := gvecsr.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Header().Compressed() || !f.Header().HasPerm() {
		t.Fatalf("flags %#x: want gap-adjacency and perm", f.Header().Flags)
	}
	got, err := f.Graph()
	if err != nil {
		t.Fatal(err)
	}
	perm, err := f.Permutation()
	if err != nil {
		t.Fatal(err)
	}
	want := order.ByDegreeDescCounting(g)
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("perm[%d] = %d, want %d", i, perm[i], want[i])
		}
	}
	pg, err := graph.Permute(g, want)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pg.Edges {
		if pg.Edges[i] != got.Edges[i] {
			t.Fatalf("stored graph is not the permuted graph at arc %d", i)
		}
	}
}

func TestGenerateAndInspect(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "er"+gvecsr.Ext)
	runOK(t, "-gen", "er", "-n", "2000", "-seed", "3", "-o", out)

	text := runOK(t, "-inspect", out)
	for _, want := range []string{"gvecsr v1", "vertices  2000", "offsets", "edges", "weights", "ok"} {
		if !strings.Contains(text, want) {
			t.Fatalf("inspection output missing %q:\n%s", want, text)
		}
	}

	// Corrupt one payload byte: -inspect must report CORRUPT and exit 1.
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var outb, errb bytes.Buffer
	if code := run([]string{"-inspect", out}, &outb, &errb); code != 1 {
		t.Fatalf("inspect of corrupt container exited %d, want 1\n%s", code, outb.String())
	}
	if !strings.Contains(outb.String(), "CORRUPT") {
		t.Fatalf("inspection did not flag corruption:\n%s", outb.String())
	}
}

func TestGenerateStreamedClassesMatchBuilders(t *testing.T) {
	dir := t.TempDir()
	for _, class := range []string{"social", "web", "road", "kmer"} {
		out := filepath.Join(dir, class+gvecsr.Ext)
		runOK(t, "-gen", class, "-n", "3000", "-seed", "11", "-o", out)
		f, err := gvecsr.Load(out)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		g, err := f.Graph()
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: generated container holds invalid graph: %v", class, err)
		}
		if g.NumVertices() < 3000 {
			t.Fatalf("%s: %d vertices, want >= 3000", class, g.NumVertices())
		}
		f.Close()
	}
}

func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                                   // nothing
		{"-o", "x.gvecsr"},                   // no input
		{"-i", "a", "-gen", "er", "-o", "x"}, // both inputs
		{"-inspect"},                         // no paths
	} {
		var outb, errb bytes.Buffer
		if code := run(args, &outb, &errb); code != 2 {
			t.Fatalf("args %v exited %d, want 2", args, code)
		}
	}
	var outb, errb bytes.Buffer
	if code := run([]string{"-gen", "nope", "-o", filepath.Join(t.TempDir(), "x.gvecsr")}, &outb, &errb); code != 1 {
		t.Fatalf("unknown generator exited %d, want 1", code)
	}
}
