// Command gveconvert turns graph datasets into gvecsr containers — the
// mmap-able binary CSR format specified in FORMAT.md — and inspects
// existing containers. Convert once, then every run of gveleiden,
// gveserve or the benchmarks memory-maps the result in milliseconds
// instead of re-parsing text.
//
//	gveconvert -i graph.mtx -o graph.gvecsr            # convert
//	gveconvert -i big.txt -o big.gvecsr -compress      # varint gap adjacency
//	gveconvert -i g.mtx -o g.gvecsr -perm degree       # relabel by degree desc
//	gveconvert -gen er -n 1000000 -o er.gvecsr         # streamed generation
//	gveconvert -gen road -n 4000000 -seed 7 -o r.gvecsr
//	gveconvert -inspect graph.gvecsr                   # header + checksums
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gveleiden/internal/gen"
	"gveleiden/internal/graph"
	"gveleiden/internal/graph/gvecsr"
	"gveleiden/internal/order"
	"gveleiden/internal/parallel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gveconvert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		input    = fs.String("i", "", "input graph file (.gvecsr, .mtx, .bin, or edge list)")
		output   = fs.String("o", "", "output container path")
		genName  = fs.String("gen", "", "generate input instead: er|social|web|road|kmer")
		n        = fs.Int("n", 1000000, "vertices for generated input")
		seed     = fs.Uint64("seed", 1, "generator seed")
		deg      = fs.Float64("deg", 8, "average degree for -gen er")
		compress = fs.Bool("compress", false, "varint gap-encode the adjacency (FORMAT.md §3)")
		permName = fs.String("perm", "", "relabel vertices before writing: degree (descending, stored in the perm section)")
		inspect  = fs.Bool("inspect", false, "inspect containers given as positional arguments instead of converting")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *inspect {
		if fs.NArg() == 0 {
			fmt.Fprintln(stderr, "gveconvert: -inspect needs container paths as arguments")
			return 2
		}
		ok := true
		for _, path := range fs.Args() {
			h, checks, err := gvecsr.Inspect(path)
			if err != nil {
				fmt.Fprintf(stderr, "gveconvert: %s: %v\n", path, err)
				ok = false
				continue
			}
			gvecsr.WriteInspection(stdout, path, h, checks)
			for _, c := range checks {
				if !c.OK {
					ok = false
				}
			}
		}
		if !ok {
			return 1
		}
		return 0
	}

	if *output == "" || (*input == "") == (*genName == "") {
		fmt.Fprintln(stderr, "gveconvert: need -o OUT and exactly one of -i FILE or -gen NAME (or -inspect FILE...)")
		return 2
	}
	if err := convert(*input, *genName, *n, *seed, *deg, *output, *compress, *permName, stdout); err != nil {
		fmt.Fprintf(os.Stderr, "gveconvert: %v\n", err)
		return 1
	}
	return 0
}

func convert(input, genName string, n int, seed uint64, deg float64, output string, compress bool, permName string, stdout io.Writer) error {
	var g *graph.CSR
	switch {
	case input != "":
		f, err := gvecsr.LoadAny(input)
		if err != nil {
			return err
		}
		g, err = f.Graph()
		if err != nil {
			return err
		}
	case genName == "er":
		// Erdős–Rényi is not one of the paper's four classes but is the
		// cheapest checksum-heavy CI workload; stream it like the rest.
		g = graph.BuildStream(n, gen.StreamedER(n, deg, seed))
	default:
		g, _ = gen.BuildStreamedClass(genName, n, seed, parallel.Default(), parallel.DefaultThreads())
		if g == nil {
			return fmt.Errorf("unknown generator %q (er|social|web|road|kmer)", genName)
		}
	}

	opts := gvecsr.WriteOptions{GapAdjacency: compress}
	switch permName {
	case "":
	case "degree":
		perm := order.ByDegreeDescCounting(g)
		pg, err := graph.PermuteWith(parallel.Default(), parallel.DefaultThreads(), g, perm)
		if err != nil {
			return err
		}
		g = pg
		opts.Permutation = perm
	default:
		return fmt.Errorf("unknown -perm %q (want: degree)", permName)
	}

	if err := gvecsr.WriteFile(output, g, opts); err != nil {
		return err
	}
	st, err := os.Stat(output)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: |V|=%d |E|=%d, %d bytes (compress=%v perm=%q)\n",
		output, g.NumVertices(), g.NumUndirectedEdges(), st.Size(), compress, permName)
	return nil
}
