// Command gveleiden detects communities in a graph with GVE-Leiden (or
// GVE-Louvain) and reports quality metrics and phase timings.
//
//	gveleiden -i graph.mtx                  # Matrix Market input
//	gveleiden -i graph.txt -algo louvain    # edge-list input, Louvain
//	gveleiden -gen web -n 100000            # synthetic input
//	gveleiden -i g.mtx -o membership.txt    # write vertex→community map
//	gveleiden -i g.mtx -refine random -labels refine -variant heavy
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gveleiden/internal/core"
	"gveleiden/internal/export"
	"gveleiden/internal/gen"
	"gveleiden/internal/graph"
	"gveleiden/internal/quality"
)

func main() {
	var (
		input     = flag.String("i", "", "input graph file (.mtx, .bin, or edge list)")
		genName   = flag.String("gen", "", "generate input instead: web|social|road|kmer|er|ba|rmat")
		n         = flag.Int("n", 100000, "vertices for generated input")
		seed      = flag.Uint64("seed", 1, "generator seed")
		algo      = flag.String("algo", "leiden", "algorithm: leiden|louvain")
		threads   = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		refine    = flag.String("refine", "greedy", "refinement: greedy|random")
		labels    = flag.String("labels", "move", "super-vertex labels: move|refine")
		variant   = flag.String("variant", "light", "variant: light|medium|heavy")
		objective = flag.String("objective", "modularity", "quality function: modularity|cpm")
		maxPass   = flag.Int("passes", 10, "max passes")
		tol       = flag.Float64("tolerance", 0.01, "initial iteration tolerance")
		resol     = flag.Float64("resolution", 1.0, "modularity resolution γ")
		out       = flag.String("o", "", "write membership (one 'vertex community' line each)")
		exportDot = flag.String("export-dot", "", "write a Graphviz DOT file colored by community")
		exportGML = flag.String("export-graphml", "", "write a GraphML file with community attributes")
		determ    = flag.Bool("deterministic", false, "coloring-ordered phases: identical results for any thread count")
		verbose   = flag.Bool("v", false, "print per-pass statistics")
		checkDis  = flag.Bool("check-disconnected", true, "count internally-disconnected communities")
	)
	flag.Parse()

	g, err := loadOrGenerate(*input, *genName, *n, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gveleiden: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("graph: |V|=%d |E|=%d\n", g.NumVertices(), g.NumUndirectedEdges())

	opt := core.DefaultOptions()
	opt.Threads = *threads
	opt.MaxPasses = *maxPass
	opt.Tolerance = *tol
	opt.Resolution = *resol
	opt.Deterministic = *determ
	switch *refine {
	case "greedy":
		opt.Refinement = core.RefineGreedy
	case "random":
		opt.Refinement = core.RefineRandom
	default:
		fmt.Fprintf(os.Stderr, "gveleiden: unknown refinement %q\n", *refine)
		os.Exit(2)
	}
	switch *labels {
	case "move":
		opt.Labels = core.LabelMove
	case "refine":
		opt.Labels = core.LabelRefine
	default:
		fmt.Fprintf(os.Stderr, "gveleiden: unknown labels mode %q\n", *labels)
		os.Exit(2)
	}
	switch *variant {
	case "light":
		opt.Variant = core.VariantLight
	case "medium":
		opt.Variant = core.VariantMedium
	case "heavy":
		opt.Variant = core.VariantHeavy
	default:
		fmt.Fprintf(os.Stderr, "gveleiden: unknown variant %q\n", *variant)
		os.Exit(2)
	}
	switch *objective {
	case "modularity":
		opt.Objective = core.ObjectiveModularity
	case "cpm":
		opt.Objective = core.ObjectiveCPM
	default:
		fmt.Fprintf(os.Stderr, "gveleiden: unknown objective %q\n", *objective)
		os.Exit(2)
	}

	start := time.Now()
	var res *core.Result
	switch *algo {
	case "leiden":
		res = core.Leiden(g, opt)
	case "louvain":
		res = core.Louvain(g, opt)
	default:
		fmt.Fprintf(os.Stderr, "gveleiden: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	elapsed := time.Since(start)

	fmt.Printf("%s: %d communities, modularity %.6f, %d passes, %s\n",
		*algo, res.NumCommunities, res.Modularity, res.Passes, elapsed.Round(time.Microsecond))
	if opt.Objective == core.ObjectiveCPM {
		fmt.Printf("CPM(γ=%g) = %.6f\n", opt.Resolution, res.Quality)
	}
	rate := float64(g.NumUndirectedEdges()) / elapsed.Seconds() / 1e6
	fmt.Printf("processing rate: %.1f M edges/s\n", rate)

	if *verbose {
		mv, rf, ag, ot := res.Stats.PhaseSplit()
		fmt.Printf("phase split: move %.0f%%  refine %.0f%%  aggregate %.0f%%  others %.0f%%\n",
			mv*100, rf*100, ag*100, ot*100)
		fmt.Printf("first pass: %.0f%% of runtime\n", res.Stats.FirstPassFraction()*100)
		for i, p := range res.Stats.Passes {
			fmt.Printf("  pass %d: |V'|=%d arcs=%d iters=%d refineMoves=%d |Γ|=%d move=%s refine=%s agg=%s other=%s\n",
				i, p.Vertices, p.Arcs, p.MoveIterations, p.RefineMoves, p.Communities,
				p.Move.Round(time.Microsecond), p.Refine.Round(time.Microsecond),
				p.Aggregate.Round(time.Microsecond), p.Other.Round(time.Microsecond))
		}
	}

	if *checkDis {
		ds := quality.CountDisconnected(g, res.Membership, *threads)
		fmt.Printf("disconnected communities: %d of %d (fraction %.2e)\n",
			ds.Disconnected, ds.Communities, ds.Fraction)
	}

	if *out != "" {
		if err := writeMembership(*out, res.Membership); err != nil {
			fmt.Fprintf(os.Stderr, "gveleiden: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("membership written to %s\n", *out)
	}
	if *exportDot != "" {
		if err := exportTo(*exportDot, func(f *os.File) error {
			return export.WriteDOT(f, g, res.Membership)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "gveleiden: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("DOT written to %s\n", *exportDot)
	}
	if *exportGML != "" {
		if err := exportTo(*exportGML, func(f *os.File) error {
			return export.WriteGraphML(f, g, res.Membership)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "gveleiden: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("GraphML written to %s\n", *exportGML)
	}
}

func exportTo(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}

func loadOrGenerate(input, genName string, n int, seed uint64) (*graph.CSR, error) {
	if input != "" {
		return graph.LoadFile(input)
	}
	switch genName {
	case "web":
		g, _ := gen.WebGraph(n, 20, seed)
		return g, nil
	case "social":
		g, _ := gen.SocialNetwork(n, 20, 64, 0.35, seed)
		return g, nil
	case "road":
		g, _ := gen.RoadNetwork(n, seed)
		return g, nil
	case "kmer":
		g, _ := gen.KmerGraph(n, seed)
		return g, nil
	case "er":
		return gen.ErdosRenyi(n, n*8, seed), nil
	case "ba":
		return gen.BarabasiAlbert(n, 8, seed), nil
	case "rmat":
		scale := 0
		for 1<<scale < n {
			scale++
		}
		return gen.RMAT(scale, n*8, 0, 0, 0, seed), nil
	case "":
		return nil, fmt.Errorf("need -i FILE or -gen NAME (web|social|road|kmer|er|ba|rmat)")
	default:
		return nil, fmt.Errorf("unknown generator %q", genName)
	}
}

func writeMembership(path string, membership []uint32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return quality.WritePartition(f, membership)
}
