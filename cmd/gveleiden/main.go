// Command gveleiden detects communities in a graph with GVE-Leiden (or
// GVE-Louvain) and reports quality metrics and phase timings.
//
//	gveleiden -i graph.mtx                  # Matrix Market input
//	gveleiden -i graph.txt -algo louvain    # edge-list input, Louvain
//	gveleiden -gen web -n 100000            # synthetic input
//	gveleiden -i g.mtx -o membership.txt    # write vertex→community map
//	gveleiden -i g.mtx -refine random -labels refine -variant heavy
//
// Observability:
//
//	gveleiden -gen web -n 200000 -v                      # per-pass progress + stats table
//	gveleiden -i g.mtx -trace trace.json                 # Chrome/Perfetto trace of the run
//	gveleiden -i g.mtx -metrics metrics.txt              # Prometheus text metrics
//	gveleiden -i g.mtx -pprof localhost:6060             # live pprof endpoint during the run
package main

import (
	_ "expvar" // /debug/vars on the -pprof endpoint
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"gveleiden/internal/core"
	"gveleiden/internal/export"
	"gveleiden/internal/gen"
	"gveleiden/internal/graph"
	"gveleiden/internal/observe"
	"gveleiden/internal/oracle"
	"gveleiden/internal/parallel"
	"gveleiden/internal/quality"
)

func main() {
	var (
		input     = flag.String("i", "", "input graph file (.mtx, .bin, or edge list)")
		genName   = flag.String("gen", "", "generate input instead: web|social|road|kmer|er|ba|rmat")
		n         = flag.Int("n", 100000, "vertices for generated input")
		seed      = flag.Uint64("seed", 1, "generator seed")
		algo      = flag.String("algo", "leiden", "algorithm: leiden|louvain")
		threads   = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		refine    = flag.String("refine", "greedy", "refinement: greedy|random")
		labels    = flag.String("labels", "move", "super-vertex labels: move|refine")
		variant   = flag.String("variant", "light", "variant: light|medium|heavy")
		objective = flag.String("objective", "modularity", "quality function: modularity|cpm")
		maxPass   = flag.Int("passes", 10, "max passes")
		tol       = flag.Float64("tolerance", 0.01, "initial iteration tolerance")
		tolDrop   = flag.Float64("tolerance-drop", 10, "divide the tolerance by this after every pass (threshold scaling, >= 1)")
		aggTol    = flag.Float64("aggregation-tolerance", 0.8, "stop when a pass shrinks the graph by less than this factor (in (0,1])")
		resol     = flag.Float64("resolution", 1.0, "modularity resolution γ")
		out       = flag.String("o", "", "write membership (one 'vertex community' line each)")
		exportDot = flag.String("export-dot", "", "write a Graphviz DOT file colored by community")
		exportGML = flag.String("export-graphml", "", "write a GraphML file with community attributes")
		determ    = flag.Bool("deterministic", false, "coloring-ordered phases: identical results for any thread count")
		verbose   = flag.Bool("v", false, "stream per-pass progress to stderr and print the per-pass statistics table")
		traceOut  = flag.String("trace", "", "write a Chrome-trace JSON profile of the run to this file")
		metricOut = flag.String("metrics", "", "write Prometheus text metrics of the run to this file (- for stdout)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) during the run")
		checkDis  = flag.Bool("check-disconnected", true, "count internally-disconnected communities")
		check     = flag.Bool("check", false, "run the correctness oracle on this run (per-level and whole-run invariants); exit nonzero on any violation")
	)
	flag.Parse()

	if err := validateFlags(*threads, *maxPass, *tol, *tolDrop, *aggTol, *resol); err != nil {
		fmt.Fprintf(os.Stderr, "gveleiden: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "gveleiden: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}

	var tracer *observe.Tracer
	if *traceOut != "" {
		tracer = observe.NewTracer()
	}
	lsp := tracer.Begin("load-graph", 0)
	g, err := loadOrGenerate(*input, *genName, *n, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gveleiden: %v\n", err)
		os.Exit(1)
	}
	lsp.EndArgs(map[string]any{"vertices": g.NumVertices(), "arcs": g.NumArcs()})
	fmt.Printf("graph: |V|=%d |E|=%d\n", g.NumVertices(), g.NumUndirectedEdges())

	opt := core.DefaultOptions()
	opt.Threads = *threads
	opt.MaxPasses = *maxPass
	opt.Tolerance = *tol
	opt.ToleranceDrop = *tolDrop
	opt.AggregationTolerance = *aggTol
	opt.Resolution = *resol
	opt.Deterministic = *determ
	switch *refine {
	case "greedy":
		opt.Refinement = core.RefineGreedy
	case "random":
		opt.Refinement = core.RefineRandom
	default:
		fmt.Fprintf(os.Stderr, "gveleiden: unknown refinement %q\n", *refine)
		os.Exit(2)
	}
	switch *labels {
	case "move":
		opt.Labels = core.LabelMove
	case "refine":
		opt.Labels = core.LabelRefine
	default:
		fmt.Fprintf(os.Stderr, "gveleiden: unknown labels mode %q\n", *labels)
		os.Exit(2)
	}
	switch *variant {
	case "light":
		opt.Variant = core.VariantLight
	case "medium":
		opt.Variant = core.VariantMedium
	case "heavy":
		opt.Variant = core.VariantHeavy
	default:
		fmt.Fprintf(os.Stderr, "gveleiden: unknown variant %q\n", *variant)
		os.Exit(2)
	}
	switch *objective {
	case "modularity":
		opt.Objective = core.ObjectiveModularity
	case "cpm":
		opt.Objective = core.ObjectiveCPM
	default:
		fmt.Fprintf(os.Stderr, "gveleiden: unknown objective %q\n", *objective)
		os.Exit(2)
	}

	opt.Tracer = tracer // nil when -trace is unset
	if *verbose {
		opt.Observer = observe.NewProgress(os.Stderr)
	}
	if *metricOut != "" {
		// Scope the pool counter snapshot to this run.
		parallel.Default().ResetCounters()
	}
	var lc *oracle.LevelChecks
	if *check {
		lc = &oracle.LevelChecks{R: &oracle.Report{}, Threads: *threads}
		opt = lc.Attach(opt)
	}

	start := time.Now()
	var res *core.Result
	switch *algo {
	case "leiden":
		res = core.Leiden(g, opt)
	case "louvain":
		res = core.Louvain(g, opt)
	default:
		fmt.Fprintf(os.Stderr, "gveleiden: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	elapsed := time.Since(start)

	fmt.Printf("%s: %d communities, modularity %.6f, %d passes, %s\n",
		*algo, res.NumCommunities, res.Modularity, res.Passes, elapsed.Round(time.Microsecond))
	if opt.Objective == core.ObjectiveCPM {
		fmt.Printf("CPM(γ=%g) = %.6f\n", opt.Resolution, res.Quality)
	}
	rate := float64(g.NumUndirectedEdges()) / elapsed.Seconds() / 1e6
	fmt.Printf("processing rate: %.1f M edges/s\n", rate)

	if *verbose {
		fmt.Print(res.Stats.String())
	}
	if *traceOut != "" {
		if err := exportTo(*traceOut, tracer.Write); err != nil {
			fmt.Fprintf(os.Stderr, "gveleiden: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
	}
	if *metricOut != "" {
		ms := observe.NewMetricSet()
		effThreads := opt.Threads
		if effThreads <= 0 {
			effThreads = parallel.DefaultThreads()
		}
		core.RunInfoMetrics(ms, g.NumVertices(), g.NumArcs(), effThreads, res)
		res.Stats.AddMetrics(ms)
		core.AddPoolMetrics(ms, parallel.Default().Counters())
		if *metricOut == "-" {
			if err := ms.WritePrometheus(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "gveleiden: %v\n", err)
				os.Exit(1)
			}
		} else {
			if err := exportTo(*metricOut, ms.WritePrometheus); err != nil {
				fmt.Fprintf(os.Stderr, "gveleiden: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("metrics written to %s\n", *metricOut)
		}
	}

	if *checkDis {
		ds := quality.CountDisconnected(g, res.Membership, *threads)
		fmt.Printf("disconnected communities: %d of %d (fraction %.2e)\n",
			ds.Disconnected, ds.Communities, ds.Fraction)
	}
	if lc != nil {
		oracle.CheckRun(lc.R, g, res, *algo == "leiden", *threads)
		if err := lc.R.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "gveleiden: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("oracle: %d invariant checks across %d levels, all passed\n", lc.R.Checks, lc.Levels)
	}

	if *out != "" {
		if err := writeMembership(*out, res.Membership); err != nil {
			fmt.Fprintf(os.Stderr, "gveleiden: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("membership written to %s\n", *out)
	}
	if *exportDot != "" {
		if err := exportTo(*exportDot, func(w io.Writer) error {
			return export.WriteDOT(w, g, res.Membership)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "gveleiden: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("DOT written to %s\n", *exportDot)
	}
	if *exportGML != "" {
		if err := exportTo(*exportGML, func(w io.Writer) error {
			return export.WriteGraphML(w, g, res.Membership)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "gveleiden: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("GraphML written to %s\n", *exportGML)
	}
}

// validateFlags rejects numeric flag values the algorithm cannot run
// with, instead of letting core.Options.normalize silently replace them
// with defaults (a typo like -resolution=-1 should be an error, not a
// quiet γ=1 run). The !(x > bound) form deliberately catches NaN.
func validateFlags(threads, passes int, tol, drop, aggTol, resol float64) error {
	if threads < 0 {
		return fmt.Errorf("-threads must be >= 0, got %d", threads)
	}
	if passes < 1 {
		return fmt.Errorf("-passes must be >= 1, got %d", passes)
	}
	if !(resol > 0) || math.IsInf(resol, 0) {
		return fmt.Errorf("-resolution must be a positive finite number, got %g", resol)
	}
	if !(tol > 0) || math.IsInf(tol, 0) {
		return fmt.Errorf("-tolerance must be a positive finite number, got %g", tol)
	}
	if !(drop >= 1) || math.IsInf(drop, 0) {
		return fmt.Errorf("-tolerance-drop must be a finite number >= 1, got %g", drop)
	}
	if !(aggTol > 0 && aggTol <= 1) {
		return fmt.Errorf("-aggregation-tolerance must be in (0, 1], got %g", aggTol)
	}
	return nil
}

func exportTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}

func loadOrGenerate(input, genName string, n int, seed uint64) (*graph.CSR, error) {
	if input != "" {
		return graph.LoadFile(input)
	}
	switch genName {
	case "web":
		g, _ := gen.WebGraph(n, 20, seed)
		return g, nil
	case "social":
		g, _ := gen.SocialNetwork(n, 20, 64, 0.35, seed)
		return g, nil
	case "road":
		g, _ := gen.RoadNetwork(n, seed)
		return g, nil
	case "kmer":
		g, _ := gen.KmerGraph(n, seed)
		return g, nil
	case "er":
		return gen.ErdosRenyi(n, n*8, seed), nil
	case "ba":
		return gen.BarabasiAlbert(n, 8, seed), nil
	case "rmat":
		scale := 0
		for 1<<scale < n {
			scale++
		}
		return gen.RMAT(scale, n*8, 0, 0, 0, seed), nil
	case "":
		return nil, fmt.Errorf("need -i FILE or -gen NAME (web|social|road|kmer|er|ba|rmat)")
	default:
		return nil, fmt.Errorf("unknown generator %q", genName)
	}
}

func writeMembership(path string, membership []uint32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return quality.WritePartition(f, membership)
}
