// Command gveleiden detects communities in a graph with GVE-Leiden (or
// GVE-Louvain) and reports quality metrics and phase timings.
//
//	gveleiden -i graph.mtx                  # Matrix Market input
//	gveleiden -i graph.txt -algo louvain    # edge-list input, Louvain
//	gveleiden -gen web -n 100000            # synthetic input
//	gveleiden -i g.mtx -o membership.txt    # write vertex→community map
//	gveleiden -i g.mtx -refine random -labels refine -variant heavy
//
// Observability:
//
//	gveleiden -gen web -n 200000 -v                      # per-pass progress + stats table
//	gveleiden -i g.mtx -trace trace.json                 # Chrome/Perfetto trace of the run
//	gveleiden -i g.mtx -metrics metrics.txt              # Prometheus text metrics
//	gveleiden -gen web -serve :6060 -repeat 20           # live introspection server:
//	                                                     # /metrics /metrics.json /healthz
//	                                                     # /debug/flight /debug/vars /debug/pprof
//	gveleiden -gen web -log-format json                  # structured run/pass logs on stderr
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"gveleiden/internal/core"
	"gveleiden/internal/export"
	"gveleiden/internal/gen"
	"gveleiden/internal/graph"
	"gveleiden/internal/graph/gvecsr"
	"gveleiden/internal/observe"
	"gveleiden/internal/oracle"
	"gveleiden/internal/parallel"
	"gveleiden/internal/quality"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// config holds the parsed command line.
type config struct {
	input, genName              string
	n                           int
	seed                        uint64
	algo                        string
	threads, maxPass            int
	refine, labels, variant     string
	objective                   string
	tol, tolDrop, aggTol, resol float64
	out, exportDot, exportGML   string
	determ, verbose             bool
	traceOut, metricOut         string
	serveAddr                   string
	repeat                      int
	linger                      time.Duration
	logFormat                   string
	sampleInterval              time.Duration
	flightSize                  int
	checkDis, check             bool
}

func parseFlags(args []string, stderr io.Writer) (*config, error) {
	fs := flag.NewFlagSet("gveleiden", flag.ContinueOnError)
	fs.SetOutput(stderr)
	c := &config{}
	fs.StringVar(&c.input, "i", "", "input graph file (.gvecsr, .mtx, .bin, or edge list)")
	fs.StringVar(&c.genName, "gen", "", "generate input instead: web|social|road|kmer|er|ba|rmat")
	fs.IntVar(&c.n, "n", 100000, "vertices for generated input")
	fs.Uint64Var(&c.seed, "seed", 1, "generator seed")
	fs.StringVar(&c.algo, "algo", "leiden", "algorithm: leiden|louvain")
	fs.IntVar(&c.threads, "threads", 0, "worker threads (0 = GOMAXPROCS)")
	fs.StringVar(&c.refine, "refine", "greedy", "refinement: greedy|random")
	fs.StringVar(&c.labels, "labels", "move", "super-vertex labels: move|refine")
	fs.StringVar(&c.variant, "variant", "light", "variant: light|medium|heavy")
	fs.StringVar(&c.objective, "objective", "modularity", "quality function: modularity|cpm")
	fs.IntVar(&c.maxPass, "passes", 10, "max passes")
	fs.Float64Var(&c.tol, "tolerance", 0.01, "initial iteration tolerance")
	fs.Float64Var(&c.tolDrop, "tolerance-drop", 10, "divide the tolerance by this after every pass (threshold scaling, >= 1)")
	fs.Float64Var(&c.aggTol, "aggregation-tolerance", 0.8, "stop when a pass shrinks the graph by less than this factor (in (0,1])")
	fs.Float64Var(&c.resol, "resolution", 1.0, "modularity resolution γ")
	fs.StringVar(&c.out, "o", "", "write membership (one 'vertex community' line each)")
	fs.StringVar(&c.exportDot, "export-dot", "", "write a Graphviz DOT file colored by community")
	fs.StringVar(&c.exportGML, "export-graphml", "", "write a GraphML file with community attributes")
	fs.BoolVar(&c.determ, "deterministic", false, "coloring-ordered phases: identical results for any thread count")
	fs.BoolVar(&c.verbose, "v", false, "stream per-pass progress to stderr and print the per-pass statistics table")
	fs.StringVar(&c.traceOut, "trace", "", "write a Chrome-trace JSON profile of the run to this file (flushed even on SIGINT)")
	fs.StringVar(&c.metricOut, "metrics", "", "write Prometheus text metrics of the run to this file (- for stdout)")
	fs.StringVar(&c.serveAddr, "serve", "", "serve the introspection endpoint (/metrics, /metrics.json, /healthz, /debug/flight, /debug/vars, /debug/pprof) on this address")
	fs.IntVar(&c.repeat, "repeat", 1, "run the algorithm this many times on the loaded graph; telemetry accumulates across runs")
	fs.DurationVar(&c.linger, "linger", 0, "with -serve: keep serving this long after the runs finish (negative = until SIGINT/SIGTERM)")
	fs.StringVar(&c.logFormat, "log-format", "", "structured run/pass logging to stderr: json|text (empty = off)")
	fs.DurationVar(&c.sampleInterval, "sample-interval", observe.DefaultSampleInterval, "runtime-metrics poll interval for the -serve sampler")
	fs.IntVar(&c.flightSize, "flight", observe.DefaultFlightSize, "flight-recorder capacity: last N run records kept for /debug/flight")
	fs.BoolVar(&c.checkDis, "check-disconnected", true, "count internally-disconnected communities")
	fs.BoolVar(&c.check, "check", false, "run the correctness oracle on this run (per-level and whole-run invariants); exit nonzero on any violation")
	pprofAddr := fs.String("pprof", "", "deprecated alias for -serve (same endpoint set)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *pprofAddr != "" {
		if c.serveAddr == "" {
			c.serveAddr = *pprofAddr
		}
		fmt.Fprintln(stderr, "gveleiden: -pprof is deprecated; use -serve (same endpoints plus /metrics)")
	}
	return c, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	c, err := parseFlags(args, stderr)
	if err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "gveleiden: %v\n", err)
		return 1
	}
	usageErr := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "gveleiden: "+format+"\n", a...)
		return 2
	}
	if err := validateFlags(c.threads, c.maxPass, c.tol, c.tolDrop, c.aggTol, c.resol); err != nil {
		return usageErr("%v", err)
	}
	if c.repeat < 1 {
		return usageErr("-repeat must be >= 1, got %d", c.repeat)
	}

	opt := core.DefaultOptions()
	opt.Threads = c.threads
	opt.MaxPasses = c.maxPass
	opt.Tolerance = c.tol
	opt.ToleranceDrop = c.tolDrop
	opt.AggregationTolerance = c.aggTol
	opt.Resolution = c.resol
	opt.Deterministic = c.determ
	switch c.refine {
	case "greedy":
		opt.Refinement = core.RefineGreedy
	case "random":
		opt.Refinement = core.RefineRandom
	default:
		return usageErr("unknown refinement %q", c.refine)
	}
	switch c.labels {
	case "move":
		opt.Labels = core.LabelMove
	case "refine":
		opt.Labels = core.LabelRefine
	default:
		return usageErr("unknown labels mode %q", c.labels)
	}
	switch c.variant {
	case "light":
		opt.Variant = core.VariantLight
	case "medium":
		opt.Variant = core.VariantMedium
	case "heavy":
		opt.Variant = core.VariantHeavy
	default:
		return usageErr("unknown variant %q", c.variant)
	}
	switch c.objective {
	case "modularity":
		opt.Objective = core.ObjectiveModularity
	case "cpm":
		opt.Objective = core.ObjectiveCPM
	default:
		return usageErr("unknown objective %q", c.objective)
	}
	if c.algo != "leiden" && c.algo != "louvain" {
		return usageErr("unknown algorithm %q", c.algo)
	}

	var logger *slog.Logger
	if c.logFormat != "" {
		logger = observe.NewLogger(stderr, c.logFormat, slog.LevelInfo)
	}

	// The tracer's sink is registered up front so the SIGINT handler can
	// salvage a readable trace from a killed run with one Close call.
	var tracer *observe.Tracer
	if c.traceOut != "" {
		f, err := os.Create(c.traceOut)
		if err != nil {
			return fail(err)
		}
		tracer = observe.NewTracer()
		tracer.SetOutput(f)
	}
	opt.Tracer = tracer

	// Continuous telemetry: always on (the per-event cost is a few
	// atomic adds), feeding the flight recorder, the -metrics export,
	// and the -serve endpoint. The pool region-latency histogram is the
	// one observability hook with a region-granular clock cost, so it is
	// attached only when something exports it.
	tel := observe.NewTelemetry(c.flightSize)
	if c.serveAddr != "" || c.metricOut != "" {
		parallel.Default().SetRegionLatency(tel.Region())
		defer parallel.Default().SetRegionLatency(nil)
	}
	var progress, slogObs observe.Observer
	if c.verbose {
		progress = observe.NewProgress(stderr)
	}
	if logger != nil {
		slogObs = observe.NewSlogObserver(logger)
	}
	opt.Observer = observe.Multi(progress, slogObs, tel)

	// Live state behind the -serve gather callback: the scrape reports
	// the latest completed run alongside the cumulative telemetry.
	var st struct {
		sync.Mutex
		g       *graph.CSR
		res     *core.Result
		threads int
	}
	var sampler *observe.Sampler
	var server *observe.Server
	if c.serveAddr != "" {
		sampler = observe.NewSampler(c.sampleInterval)
		gather := func() *observe.MetricSet {
			ms := observe.NewMetricSet()
			st.Lock()
			g, res, thr := st.g, st.res, st.threads
			st.Unlock()
			if g != nil {
				core.RunInfoMetrics(ms, g.NumVertices(), g.NumArcs(), thr, res)
			}
			if res != nil {
				res.Stats.AddMetrics(ms)
			}
			core.AddPoolMetrics(ms, parallel.Default().Counters())
			tel.AddTo(ms)
			sampler.AddTo(ms)
			return ms
		}
		server = observe.NewServer(c.serveAddr, gather, tel.Flight())
		if err := server.Start(); err != nil {
			return fail(err)
		}
		sampler.Start()
		fmt.Fprintf(stdout, "serving on http://%s (metrics, healthz, debug/flight, debug/pprof)\n", server.Addr())
	}

	// SIGINT/SIGTERM: flush the trace, drain the server, and exit 130 —
	// a killed long run still yields its artifacts.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		if _, ok := <-sigCh; !ok {
			return
		}
		if logger != nil {
			logger.Info("interrupted", slog.String("action", "flushing trace and shutting down"))
		}
		tracer.Close()
		if server != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			server.Shutdown(ctx)
			cancel()
		}
		sampler.Stop()
		os.Exit(130)
	}()

	lsp := tracer.Begin("load-graph", 0)
	g, err := loadOrGenerate(c.input, c.genName, c.n, c.seed)
	if err != nil {
		return fail(err)
	}
	lsp.EndArgs(map[string]any{"vertices": g.NumVertices(), "arcs": g.NumArcs()})
	fmt.Fprintf(stdout, "graph: |V|=%d |E|=%d\n", g.NumVertices(), g.NumUndirectedEdges())
	effThreads := c.threads
	if effThreads <= 0 {
		effThreads = parallel.DefaultThreads()
	}
	st.Lock()
	st.g, st.threads = g, effThreads
	st.Unlock()
	if logger != nil {
		logger.Info("graph loaded",
			slog.Int("vertices", g.NumVertices()),
			slog.Int64("arcs", g.NumArcs()),
			slog.Int("threads", effThreads))
	}

	if c.metricOut != "" {
		// Scope the pool counter snapshot to the runs below.
		parallel.Default().ResetCounters()
	}

	var res *core.Result
	for runIdx := 0; runIdx < c.repeat; runIdx++ {
		runOpt := opt
		var lc *oracle.LevelChecks
		if c.check {
			lc = &oracle.LevelChecks{R: &oracle.Report{}, Threads: c.threads}
			runOpt = lc.Attach(runOpt)
		}
		runStart := time.Now()
		switch c.algo {
		case "leiden":
			res = core.Leiden(g, runOpt)
		case "louvain":
			res = core.Louvain(g, runOpt)
		}
		elapsed := time.Since(runStart)
		st.Lock()
		st.res = res
		st.Unlock()

		checkOutcome := ""
		var checkErr error
		if lc != nil {
			oracle.CheckRun(lc.R, g, res, c.algo == "leiden", c.threads)
			if checkErr = lc.R.Err(); checkErr != nil {
				checkOutcome = "failed: " + checkErr.Error()
			} else {
				checkOutcome = "passed"
			}
		}

		var dq float64
		for _, ps := range res.Stats.Passes {
			dq += ps.DeltaQ
		}
		rec := tel.RecordRun(observe.RunRecord{
			Algorithm:   c.algo,
			Start:       runStart,
			WallSeconds: elapsed.Seconds(),
			Vertices:    g.NumVertices(),
			Arcs:        g.NumArcs(),
			Threads:     effThreads,
			Passes:      res.Passes,
			Iterations:  res.Stats.TotalIterations(),
			Moves:       res.Stats.TotalMoves(),
			DeltaQ:      dq,
			Communities: res.NumCommunities,
			Modularity:  res.Modularity,
			Quality:     res.Quality,
			Phases:      res.Stats.PhaseSeconds(),
			Check:       checkOutcome,
		})
		observe.LogRun(logger, rec)

		fmt.Fprintf(stdout, "%s: %d communities, modularity %.6f, %d passes, %s\n",
			c.algo, res.NumCommunities, res.Modularity, res.Passes, elapsed.Round(time.Microsecond))
		if opt.Objective == core.ObjectiveCPM {
			fmt.Fprintf(stdout, "CPM(γ=%g) = %.6f\n", opt.Resolution, res.Quality)
		}
		rate := float64(g.NumUndirectedEdges()) / elapsed.Seconds() / 1e6
		fmt.Fprintf(stdout, "processing rate: %.1f M edges/s\n", rate)
		if c.verbose {
			fmt.Fprint(stdout, res.Stats.String())
		}
		if lc != nil {
			if checkErr != nil {
				return fail(checkErr)
			}
			fmt.Fprintf(stdout, "oracle: %d invariant checks across %d levels, all passed\n", lc.R.Checks, lc.Levels)
		}
	}

	if c.traceOut != "" {
		if err := tracer.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", c.traceOut)
	}
	if c.metricOut != "" {
		ms := observe.NewMetricSet()
		core.RunInfoMetrics(ms, g.NumVertices(), g.NumArcs(), effThreads, res)
		res.Stats.AddMetrics(ms)
		core.AddPoolMetrics(ms, parallel.Default().Counters())
		tel.AddTo(ms)
		if c.metricOut == "-" {
			if err := ms.WritePrometheus(stdout); err != nil {
				return fail(err)
			}
		} else {
			if err := exportTo(c.metricOut, ms.WritePrometheus); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stdout, "metrics written to %s\n", c.metricOut)
		}
	}

	if c.checkDis {
		ds := quality.CountDisconnected(g, res.Membership, c.threads)
		fmt.Fprintf(stdout, "disconnected communities: %d of %d (fraction %.2e)\n",
			ds.Disconnected, ds.Communities, ds.Fraction)
	}

	if c.out != "" {
		if err := writeMembership(c.out, res.Membership); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "membership written to %s\n", c.out)
	}
	if c.exportDot != "" {
		if err := exportTo(c.exportDot, func(w io.Writer) error {
			return export.WriteDOT(w, g, res.Membership)
		}); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "DOT written to %s\n", c.exportDot)
	}
	if c.exportGML != "" {
		if err := exportTo(c.exportGML, func(w io.Writer) error {
			return export.WriteGraphML(w, g, res.Membership)
		}); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "GraphML written to %s\n", c.exportGML)
	}

	if server != nil {
		if c.linger < 0 {
			fmt.Fprintln(stdout, "runs complete; serving until SIGINT/SIGTERM")
			select {} // the signal handler exits the process
		} else if c.linger > 0 {
			fmt.Fprintf(stdout, "runs complete; serving for another %s\n", c.linger)
			time.Sleep(c.linger)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := server.Shutdown(ctx); err != nil {
			return fail(err)
		}
		sampler.Stop()
	}
	if logger != nil {
		logger.Info("exit", slog.Int("runs", c.repeat))
	}
	return 0
}

// validateFlags rejects numeric flag values the algorithm cannot run
// with, instead of letting core.Options.normalize silently replace them
// with defaults (a typo like -resolution=-1 should be an error, not a
// quiet γ=1 run). The !(x > bound) form deliberately catches NaN.
func validateFlags(threads, passes int, tol, drop, aggTol, resol float64) error {
	if threads < 0 {
		return fmt.Errorf("-threads must be >= 0, got %d", threads)
	}
	if passes < 1 {
		return fmt.Errorf("-passes must be >= 1, got %d", passes)
	}
	if !(resol > 0) || math.IsInf(resol, 0) {
		return fmt.Errorf("-resolution must be a positive finite number, got %g", resol)
	}
	if !(tol > 0) || math.IsInf(tol, 0) {
		return fmt.Errorf("-tolerance must be a positive finite number, got %g", tol)
	}
	if !(drop >= 1) || math.IsInf(drop, 0) {
		return fmt.Errorf("-tolerance-drop must be a finite number >= 1, got %g", drop)
	}
	if !(aggTol > 0 && aggTol <= 1) {
		return fmt.Errorf("-aggregation-tolerance must be in (0, 1], got %g", aggTol)
	}
	return nil
}

func exportTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}

func loadOrGenerate(input, genName string, n int, seed uint64) (*graph.CSR, error) {
	if input != "" {
		// gvecsr containers are memory-mapped; the mapping stays alive
		// for the process lifetime, which is exactly the graph's.
		f, err := gvecsr.LoadAny(input)
		if err != nil {
			return nil, err
		}
		return f.Graph()
	}
	switch genName {
	case "web":
		g, _ := gen.WebGraph(n, 20, seed)
		return g, nil
	case "social":
		g, _ := gen.SocialNetwork(n, 20, 64, 0.35, seed)
		return g, nil
	case "road":
		g, _ := gen.RoadNetwork(n, seed)
		return g, nil
	case "kmer":
		g, _ := gen.KmerGraph(n, seed)
		return g, nil
	case "er":
		return gen.ErdosRenyi(n, n*8, seed), nil
	case "ba":
		return gen.BarabasiAlbert(n, 8, seed), nil
	case "rmat":
		scale := 0
		for 1<<scale < n {
			scale++
		}
		return gen.RMAT(scale, n*8, 0, 0, 0, seed), nil
	case "":
		return nil, fmt.Errorf("need -i FILE or -gen NAME (web|social|road|kmer|er|ba|rmat)")
	default:
		return nil, fmt.Errorf("unknown generator %q", genName)
	}
}

func writeMembership(path string, membership []uint32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return quality.WritePartition(f, membership)
}
