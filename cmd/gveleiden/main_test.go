package main

import (
	"math"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	ok := func(threads, passes int, tol, drop, aggTol, resol float64) bool {
		return validateFlags(threads, passes, tol, drop, aggTol, resol) == nil
	}
	if !ok(0, 10, 0.01, 10, 0.8, 1) {
		t.Fatalf("defaults rejected: %v", validateFlags(0, 10, 0.01, 10, 0.8, 1))
	}
	if !ok(8, 1, 1e-9, 1, 1, 0.25) {
		t.Fatalf("legal extremes rejected")
	}
	bad := []struct {
		name                     string
		threads, passes          int
		tol, drop, aggTol, resol float64
	}{
		{"negative threads", -1, 10, 0.01, 10, 0.8, 1},
		{"zero passes", 0, 0, 0.01, 10, 0.8, 1},
		{"zero tolerance", 0, 10, 0, 10, 0.8, 1},
		{"NaN tolerance", 0, 10, math.NaN(), 10, 0.8, 1},
		{"Inf tolerance", 0, 10, math.Inf(1), 10, 0.8, 1},
		{"drop below one", 0, 10, 0.01, 0.5, 0.8, 1},
		{"NaN drop", 0, 10, 0.01, math.NaN(), 0.8, 1},
		{"zero aggregation tolerance", 0, 10, 0.01, 10, 0, 1},
		{"aggregation tolerance above one", 0, 10, 0.01, 10, 1.5, 1},
		{"negative resolution", 0, 10, 0.01, 10, 0.8, -1},
		{"zero resolution", 0, 10, 0.01, 10, 0.8, 0},
		{"NaN resolution", 0, 10, 0.01, 10, 0.8, math.NaN()},
	}
	for _, tc := range bad {
		if ok(tc.threads, tc.passes, tc.tol, tc.drop, tc.aggTol, tc.resol) {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
