package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	ok := func(threads, passes int, tol, drop, aggTol, resol float64) bool {
		return validateFlags(threads, passes, tol, drop, aggTol, resol) == nil
	}
	if !ok(0, 10, 0.01, 10, 0.8, 1) {
		t.Fatalf("defaults rejected: %v", validateFlags(0, 10, 0.01, 10, 0.8, 1))
	}
	if !ok(8, 1, 1e-9, 1, 1, 0.25) {
		t.Fatalf("legal extremes rejected")
	}
	bad := []struct {
		name                     string
		threads, passes          int
		tol, drop, aggTol, resol float64
	}{
		{"negative threads", -1, 10, 0.01, 10, 0.8, 1},
		{"zero passes", 0, 0, 0.01, 10, 0.8, 1},
		{"zero tolerance", 0, 10, 0, 10, 0.8, 1},
		{"NaN tolerance", 0, 10, math.NaN(), 10, 0.8, 1},
		{"Inf tolerance", 0, 10, math.Inf(1), 10, 0.8, 1},
		{"drop below one", 0, 10, 0.01, 0.5, 0.8, 1},
		{"NaN drop", 0, 10, 0.01, math.NaN(), 0.8, 1},
		{"zero aggregation tolerance", 0, 10, 0.01, 10, 0, 1},
		{"aggregation tolerance above one", 0, 10, 0.01, 10, 1.5, 1},
		{"negative resolution", 0, 10, 0.01, 10, 0.8, -1},
		{"zero resolution", 0, 10, 0.01, 10, 0.8, 0},
		{"NaN resolution", 0, 10, 0.01, 10, 0.8, math.NaN()},
	}
	for _, tc := range bad {
		if ok(tc.threads, tc.passes, tc.tol, tc.drop, tc.aggTol, tc.resol) {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// syncBuffer is a concurrency-safe io.Writer: the serve test reads the
// CLI's stdout while run() is still writing to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestRunServeEndpoints drives the full CLI in-process with -serve and
// -repeat and checks the introspection endpoints: /metrics exposes
// phase-duration histograms with a count covering every run's passes,
// /healthz answers 200, and /debug/flight dumps one record per run.
func TestRunServeEndpoints(t *testing.T) {
	const repeat = 5
	var stdout syncBuffer
	var stderr syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-gen", "er", "-n", "2000", "-threads", "2",
			"-serve", "127.0.0.1:0", "-repeat", fmt.Sprint(repeat),
			"-linger", "5s", "-check-disconnected=false",
			"-log-format", "json",
		}, &stdout, &stderr)
	}()

	// The serve line is printed before the runs start.
	addrRe := regexp.MustCompile(`serving on http://([\d.]+:\d+)`)
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := addrRe.FindStringSubmatch(stdout.String()); m != nil {
			base = "http://" + m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("no serve line in stdout:\n%s\nstderr:\n%s", stdout.String(), stderr.String())
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	if code, _ := httpGet(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz status = %d", code)
	}

	// Wait until all runs are in the flight recorder, then check the dump.
	var flight struct {
		Total    uint64 `json:"total"`
		Capacity int    `json:"capacity"`
		Records  []struct {
			Seq       uint64  `json:"seq"`
			Algorithm string  `json:"algorithm"`
			Passes    int     `json:"passes"`
			Wall      float64 `json:"wall_seconds"`
		} `json:"records"`
	}
	for {
		_, body := httpGet(t, base+"/debug/flight")
		if err := json.Unmarshal([]byte(body), &flight); err != nil {
			t.Fatalf("/debug/flight: bad JSON: %v\n%s", err, body)
		}
		if flight.Total >= repeat {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight total = %d after deadline, want %d", flight.Total, repeat)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if flight.Total != repeat || len(flight.Records) != repeat {
		t.Fatalf("flight total=%d records=%d, want %d", flight.Total, len(flight.Records), repeat)
	}
	totalPasses := 0
	for i, r := range flight.Records {
		if r.Seq != uint64(i) {
			t.Errorf("record %d: seq = %d", i, r.Seq)
		}
		if r.Algorithm != "leiden" || r.Passes < 1 || r.Wall <= 0 {
			t.Errorf("record %d: implausible %+v", i, r)
		}
		totalPasses += r.Passes
	}

	// /metrics: the move-phase histogram counts one observation per pass
	// of every run, and the run histogram one per run.
	_, metrics := httpGet(t, base+"/metrics")
	countRe := regexp.MustCompile(`(?m)^gveleiden_phase_duration_seconds_count\{phase="move"\} (\d+)$`)
	m := countRe.FindStringSubmatch(metrics)
	if m == nil {
		t.Fatalf("/metrics: no move-phase histogram count:\n%.2000s", metrics)
	}
	var moveCount int
	fmt.Sscanf(m[1], "%d", &moveCount)
	if moveCount != totalPasses {
		t.Errorf("move-phase histogram count = %d, want %d (total passes)", moveCount, totalPasses)
	}
	if !strings.Contains(metrics, `gveleiden_phase_duration_seconds_bucket{le="+Inf",phase="move"}`) {
		t.Errorf("/metrics: move-phase histogram missing +Inf bucket")
	}
	if !strings.Contains(metrics, fmt.Sprintf("gveleiden_run_duration_seconds_count %d", repeat)) {
		t.Errorf("/metrics: run histogram count != %d", repeat)
	}
	if !strings.Contains(metrics, "gveleiden_runtime_goroutines") {
		t.Errorf("/metrics: sampler gauges missing")
	}

	// /metrics.json parses and carries the same histogram.
	_, jsonBody := httpGet(t, base+"/metrics.json")
	var parsed []struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	if err := json.Unmarshal([]byte(jsonBody), &parsed); err != nil {
		t.Fatalf("/metrics.json: bad JSON: %v", err)
	}
	foundHist := false
	for _, mt := range parsed {
		if mt.Name == "gveleiden_phase_duration_seconds" && mt.Type == "histogram" {
			foundHist = true
		}
	}
	if !foundHist {
		t.Errorf("/metrics.json: phase-duration histogram missing")
	}

	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run() = %d\nstderr:\n%s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run() did not return after linger")
	}
	if !strings.Contains(stderr.String(), `"msg":"run"`) {
		t.Errorf("structured log missing run-summary record:\n%s", stderr.String())
	}
}

// TestRunFlagErrors covers the exit-code contract: usage errors return
// 2, runtime failures (like a bind failure) return 1.
func TestRunFlagErrors(t *testing.T) {
	var out, errb syncBuffer
	if code := run([]string{"-repeat", "0", "-gen", "er"}, &out, &errb); code != 2 {
		t.Errorf("-repeat 0: exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"-gen", "nope"}, &out, &errb); code != 1 {
		t.Errorf("unknown generator: exit %d, want 1", code)
	}
	if code := run([]string{"-gen", "er", "-n", "500", "-serve", "256.256.256.256:99999"}, &out, &errb); code != 1 {
		t.Errorf("bad serve address: exit %d, want 1", code)
	}
}

// TestRunPprofAlias checks that the deprecated -pprof flag routes to the
// introspection server and still fails loudly on a bad address.
func TestRunPprofAlias(t *testing.T) {
	var out, errb syncBuffer
	if code := run([]string{"-gen", "er", "-n", "500", "-pprof", "256.256.256.256:99999"}, &out, &errb); code != 1 {
		t.Errorf("bad pprof address: exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "-pprof is deprecated") {
		t.Errorf("no deprecation warning on stderr:\n%s", errb.String())
	}
}
