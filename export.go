package gveleiden

import (
	"io"

	"gveleiden/internal/export"
)

// WriteDOT renders g as a Graphviz graph, coloring vertices by
// community when membership is non-nil. Intended for small graphs.
func WriteDOT(w io.Writer, g *Graph, membership []uint32) error {
	return export.WriteDOT(w, g, membership)
}

// WriteGraphML renders g as GraphML (Gephi/yEd/Cytoscape), attaching
// each vertex's community as a node attribute when membership is
// non-nil.
func WriteGraphML(w io.Writer, g *Graph, membership []uint32) error {
	return export.WriteGraphML(w, g, membership)
}
