package gveleiden_test

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// End-to-end integration tests for the command-line tools: build each
// binary once, then drive the full generate → detect → analyze pipeline
// through files, the way a user would.

var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

func buildCLIs(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	cliOnce.Do(func() {
		cliDir, cliErr = os.MkdirTemp("", "gve-cli")
		if cliErr != nil {
			return
		}
		for _, tool := range []string{"gveleiden", "graphgen", "communities", "benchall", "gveserve"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(cliDir, tool), "./cmd/"+tool)
			if out, err := cmd.CombinedOutput(); err != nil {
				cliErr = fmt.Errorf("building %s: %v\n%s", tool, err, out)
				return
			}
		}
	})
	if cliErr != nil {
		t.Fatalf("building CLIs: %v", cliErr)
	}
	return cliDir
}

func runCLI(t *testing.T, dir, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, tool), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	bin := buildCLIs(t)
	work := t.TempDir()
	graphPath := filepath.Join(work, "g.mtx")
	membPath := filepath.Join(work, "memb.txt")
	dotPath := filepath.Join(work, "g.dot")

	// 1. Generate a graph file.
	out := runCLI(t, bin, "graphgen", "-gen", "web", "-n", "3000", "-o", graphPath)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("graphgen output: %s", out)
	}

	// 2. Detect communities, write membership + DOT.
	out = runCLI(t, bin, "gveleiden", "-i", graphPath, "-o", membPath,
		"-export-dot", dotPath, "-v")
	for _, want := range []string{"communities", "modularity", "disconnected communities: 0", "phase split"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gveleiden output missing %q:\n%s", want, out)
		}
	}
	if _, err := os.Stat(dotPath); err != nil {
		t.Fatal("DOT file not written")
	}

	// 3. Analyze the saved membership.
	out = runCLI(t, bin, "communities", "-g", graphPath, "-m", membPath, "-top", "3")
	for _, want := range []string{"modularity:", "coverage:", "disconnected:    0", "largest communities"} {
		if !strings.Contains(out, want) {
			t.Fatalf("communities output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIDeterministicFlagStable(t *testing.T) {
	bin := buildCLIs(t)
	work := t.TempDir()
	graphPath := filepath.Join(work, "g.mtx")
	runCLI(t, bin, "graphgen", "-gen", "social", "-n", "2000", "-o", graphPath)

	m1 := filepath.Join(work, "m1.txt")
	m2 := filepath.Join(work, "m2.txt")
	runCLI(t, bin, "gveleiden", "-i", graphPath, "-deterministic", "-threads", "1", "-o", m1)
	runCLI(t, bin, "gveleiden", "-i", graphPath, "-deterministic", "-threads", "4", "-o", m2)
	b1, err := os.ReadFile(m1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(m2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("deterministic CLI runs differ across thread counts")
	}
}

func TestCLIBenchallSelectedExperiment(t *testing.T) {
	bin := buildCLIs(t)
	work := t.TempDir()
	report := filepath.Join(work, "report.txt")
	csvDir := filepath.Join(work, "csv")
	out := runCLI(t, bin, "benchall", "-scale", "0.05", "-repeat", "1",
		"-exp", "table2", "-o", report, "-csv", csvDir)
	if !strings.Contains(out, "Table 2") {
		t.Fatalf("benchall output:\n%s", out)
	}
	if _, err := os.Stat(report); err != nil {
		t.Fatal("report file not written")
	}
	if _, err := os.Stat(filepath.Join(csvDir, "table2.csv")); err != nil {
		t.Fatal("CSV not written")
	}
}

// lockedBuffer lets the test poll a child process's output while the
// exec copier goroutine is still appending to it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestCLIServeInterrupt drives the long-running-service shape as a
// black box: -serve with an unbounded -linger, interrupted by SIGINT.
// The process must exit 130 with its -trace artifact flushed and
// parseable — a killed run still yields its observability output.
func TestCLIServeInterrupt(t *testing.T) {
	bin := buildCLIs(t)
	work := t.TempDir()
	tracePath := filepath.Join(work, "trace.json")

	cmd := exec.Command(filepath.Join(bin, "gveleiden"),
		"-gen", "er", "-n", "2000", "-threads", "2",
		"-serve", "127.0.0.1:0", "-linger", "-1s",
		"-trace", tracePath, "-check-disconnected=false")
	var stdout, stderr lockedBuffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Wait until the run is done and the process is lingering on the
	// server (the "runs complete" line prints after all artifacts).
	deadline := time.Now().Add(15 * time.Second)
	for !strings.Contains(stdout.String(), "runs complete") {
		if time.Now().After(deadline) {
			t.Fatalf("no 'runs complete' line:\nstdout:\n%s\nstderr:\n%s",
				stdout.String(), stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !regexp.MustCompile(`serving on http://`).MatchString(stdout.String()) {
		t.Fatalf("no serve line:\n%s", stdout.String())
	}

	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 130 {
		t.Fatalf("exit after SIGINT = %v, want status 130\nstderr:\n%s", err, stderr.String())
	}

	// The tracer was flushed by the run loop (and the signal handler's
	// Close is an idempotent no-op after that): the file must hold a
	// complete JSON trace, not a truncated one.
	data, rerr := os.ReadFile(tracePath)
	if rerr != nil {
		t.Fatalf("trace not written: %v", rerr)
	}
	if !strings.Contains(string(data), `"traceEvents"`) || !strings.HasSuffix(strings.TrimSpace(string(data)), "}") {
		t.Fatalf("trace incomplete (%d bytes): %.200s", len(data), data)
	}
}

func TestCLIErrorPaths(t *testing.T) {
	bin := buildCLIs(t)
	// Missing input must exit non-zero with a diagnostic.
	cmd := exec.Command(filepath.Join(bin, "gveleiden"))
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatal("gveleiden with no input must fail")
	}
	if !strings.Contains(string(out), "need -i FILE or -gen NAME") {
		t.Fatalf("unhelpful error: %s", out)
	}
	cmd = exec.Command(filepath.Join(bin, "communities"))
	if err := cmd.Run(); err == nil {
		t.Fatal("communities with no graph must fail")
	}
}
