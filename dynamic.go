package gveleiden

import (
	"gveleiden/internal/core"
	"gveleiden/internal/graph"
)

// Delta is a batch of edge updates between two graph snapshots.
type Delta = core.Delta

// DynamicMode selects the warm-start strategy of LeidenDynamic.
type DynamicMode = core.DynamicMode

// Dynamic update strategies: DynamicNaive warm-starts every vertex;
// DynamicFrontier reprocesses only the region the batch disturbed.
const (
	DynamicNaive    = core.DynamicNaive
	DynamicFrontier = core.DynamicFrontier
)

// Objective selects the quality function the optimizer maximizes.
type Objective = core.Objective

// Quality functions: classic/generalized modularity, or the
// resolution-limit-free Constant Potts Model.
const (
	ObjectiveModularity = core.ObjectiveModularity
	ObjectiveCPM        = core.ObjectiveCPM
)

// ApplyDelta returns a new snapshot with the batch applied: deletions
// remove undirected edges first, then insertions add (or reinforce)
// them. Every deletion must name a distinct existing edge and every
// insertion weight must be finite; a batch violating either rule
// returns an error and no graph — validation is whole-batch, so a
// rejected delta is a no-op and g is never left half-applied. An
// insertion that drives an edge's summed weight to zero or below
// cancels the edge entirely, and an insertion naming a vertex one past
// the current maximum grows the graph.
//
// g itself is never mutated: the input snapshot stays valid (and, if
// it came from a memory-mapped container, read-only) while both
// versions are in use — pass the old membership plus the returned
// graph to LeidenDynamic for a warm-started update. The rebuild costs
// O(V+E); for sustained high-rate mutation keep an internal/stream
// mutable overlay (as cmd/gveserve does) and snapshot per recompute
// instead of rebuilding the CSR per batch. The same whole-batch
// semantics (graph.EvaluateDelta) back both paths, so a batch accepted
// here is accepted there and vice versa.
func ApplyDelta(g *Graph, delta Delta) (*Graph, error) {
	return graph.ApplyDelta(g, delta.Insertions, delta.Deletions)
}

// RandomDelta derives a reproducible random update batch from g, for
// benchmarking the dynamic variants.
func RandomDelta(g *Graph, insertions, deletions int, seed uint64) Delta {
	ins, del := graph.RandomDelta(g, insertions, deletions, seed)
	return Delta{Insertions: ins, Deletions: del}
}

// LeidenDynamic updates communities after a batch of edge changes:
// g is the new snapshot, prev the membership computed on the old one,
// delta the batch separating them. It warm-starts from prev — and, in
// DynamicFrontier mode, initially reprocesses only the vertices the
// batch disturbed — so it is much cheaper than a cold Leiden run while
// keeping the same guarantees (valid partition, no internally-
// disconnected communities).
func LeidenDynamic(g *Graph, prev []uint32, delta Delta, mode DynamicMode, opt Options) *Result {
	return core.LeidenDynamic(g, prev, delta, mode, opt)
}
