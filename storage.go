package gveleiden

import (
	"gveleiden/internal/graph/gvecsr"
)

// Binary graph storage: the gvecsr container (see FORMAT.md) is the
// repository's mmap-able on-disk CSR. Convert a dataset once with
// cmd/gveconvert, then open it in milliseconds on every run.

// GraphFile is an opened gvecsr container (or a wrapped parse result
// from LoadGraphAuto). Call Graph for the CSR and Close when done;
// graphs from OpenGraphFile alias the mapping and are read-only.
type GraphFile = gvecsr.File

// StorageOptions configures SaveGraphFile: varint gap compression of
// the adjacency and an optional stored vertex permutation.
type StorageOptions = gvecsr.WriteOptions

// GraphFileExt is the canonical container extension, ".gvecsr".
const GraphFileExt = gvecsr.Ext

// ErrGraphFileFormat matches (with errors.Is) every rejection of a
// corrupt, truncated, or semantically invalid container.
var ErrGraphFileFormat = gvecsr.ErrFormat

// OpenGraphFile memory-maps a container: constant-time regardless of
// graph size, zero copies, checksums verified lazily on first access.
func OpenGraphFile(path string) (*GraphFile, error) { return gvecsr.Open(path) }

// LoadGraphFile reads a container into heap memory with eager
// verification — the portable path when the graph must outlive the
// file or be mutated.
func LoadGraphFile(path string) (*GraphFile, error) { return gvecsr.Load(path) }

// LoadGraphAuto opens any supported dataset: gvecsr containers are
// memory-mapped (detected by magic, so the extension is advisory);
// MatrixMarket, legacy binary and edge-list files are parsed.
func LoadGraphAuto(path string) (*GraphFile, error) { return gvecsr.LoadAny(path) }

// SaveGraphFile writes g as a gvecsr container. Output is
// byte-deterministic: identical graphs and options produce identical
// files.
func SaveGraphFile(path string, g *Graph, opts StorageOptions) error {
	return gvecsr.WriteFile(path, g, opts)
}
