package gveleiden_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"gveleiden"
)

func TestFacadeMetrics(t *testing.T) {
	g := twoCliques()
	res := gveleiden.Leiden(g, gveleiden.DefaultOptions())

	ms := gveleiden.AnalyzeCommunities(g, res.Membership)
	if len(ms) != 2 {
		t.Fatalf("communities = %d", len(ms))
	}
	for _, m := range ms {
		if !m.Connected || m.Size != 4 {
			t.Fatalf("bad community metrics: %+v", m)
		}
	}

	pm := gveleiden.AnalyzePartition(g, res.Membership)
	if pm.Communities != 2 || pm.Disconnected != 0 {
		t.Fatalf("bad partition metrics: %+v", pm)
	}

	cond := gveleiden.Conductance(g, []uint32{0, 1, 2, 3})
	if cond <= 0 || cond >= 1 {
		t.Fatalf("conductance = %v", cond)
	}

	q1 := gveleiden.ModularityResolution(g, res.Membership, 1)
	if math.Abs(q1-res.Modularity) > 1e-12 {
		t.Fatal("γ=1 resolution must equal classic modularity")
	}
	if gveleiden.ModularityResolution(g, res.Membership, 4) >= q1 {
		t.Fatal("higher γ must lower Q")
	}

	if gveleiden.RandIndex(res.Membership, res.Membership) != 1 {
		t.Fatal("RandIndex self-comparison must be 1")
	}
}

func TestFacadeExports(t *testing.T) {
	g := twoCliques()
	res := gveleiden.Leiden(g, gveleiden.DefaultOptions())

	var dot bytes.Buffer
	if err := gveleiden.WriteDOT(&dot, g, res.Membership); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "graph communities {") {
		t.Fatal("DOT output malformed")
	}

	var gml bytes.Buffer
	if err := gveleiden.WriteGraphML(&gml, g, res.Membership); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gml.String(), "graphml") {
		t.Fatal("GraphML output malformed")
	}
}

func TestFacadeCPMValue(t *testing.T) {
	g := twoCliques()
	member := []uint32{0, 0, 0, 0, 1, 1, 1, 1}
	// CPM at γ=0: just normalized internal weight = 12/13.
	if got := gveleiden.CPM(g, member, 0); math.Abs(got-12.0/13.0) > 1e-12 {
		t.Fatalf("CPM(γ=0) = %v", got)
	}
}

func TestFacadeGenerateKmerDetection(t *testing.T) {
	g := gveleiden.GenerateKmer(2000, 5)
	res := gveleiden.Leiden(g, gveleiden.DefaultOptions())
	if res.Modularity < 0.8 {
		t.Fatalf("k-mer graphs are strongly modular; Q = %.3f", res.Modularity)
	}
	if ds := gveleiden.CountDisconnected(g, res.Membership, 0); ds.Disconnected != 0 {
		t.Fatalf("%d disconnected", ds.Disconnected)
	}
}
