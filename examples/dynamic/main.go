// Dynamic: maintain communities over an evolving graph — the paper's
// stated future-work direction ("refine-based approach may be more
// suitable for the design of dynamic Leiden algorithm"). A stream of
// edge batches arrives; instead of re-running Leiden from scratch on
// every snapshot, LeidenDynamic warm-starts from the previous
// membership and (in frontier mode) reprocesses only the disturbed
// region.
package main

import (
	"fmt"
	"time"

	"gveleiden"
)

func main() {
	const n = 40000
	fmt.Printf("initial snapshot: %d-vertex social network…\n", n)
	g, _ := gveleiden.GenerateSocial(n, 16, 64, 0.3, 11)
	opt := gveleiden.DefaultOptions()

	t0 := time.Now()
	res := gveleiden.Leiden(g, opt)
	coldTime := time.Since(t0)
	fmt.Printf("cold run: |Γ|=%d Q=%.4f in %s\n\n",
		res.NumCommunities, res.Modularity, coldTime.Round(time.Millisecond))

	fmt.Println("batch  mode              time      vs-static  |Γ|   Q        NMI(vs static)")
	for batch := 1; batch <= 5; batch++ {
		// Each batch inserts and deletes 0.1% of the edges.
		m := int(g.NumUndirectedEdges() / 1000)
		delta := gveleiden.RandomDelta(g, m, m, uint64(batch))
		gNew, err := gveleiden.ApplyDelta(g, delta)
		if err != nil {
			panic(err)
		}

		// Reference: full static re-run on the new snapshot.
		t0 = time.Now()
		static := gveleiden.Leiden(gNew, opt)
		staticTime := time.Since(t0)

		for _, mode := range []gveleiden.DynamicMode{
			gveleiden.DynamicNaive, gveleiden.DynamicFrontier,
		} {
			t0 = time.Now()
			dyn := gveleiden.LeidenDynamic(gNew, res.Membership, delta, mode, opt)
			dynTime := time.Since(t0)
			fmt.Printf("%5d  %-16s  %-8s  %.2fx      %-4d  %.4f   %.3f\n",
				batch, mode, dynTime.Round(time.Millisecond),
				float64(staticTime)/float64(dynTime),
				dyn.NumCommunities, dyn.Modularity,
				gveleiden.NMI(dyn.Membership, static.Membership))
			if mode == gveleiden.DynamicFrontier {
				// Advance the stream with the frontier result.
				res = dyn
			}
		}
		g = gNew
	}
	fmt.Println("\ndynamic updates track the static solution at a fraction of the cost,")
	fmt.Println("and inherit Leiden's no-disconnected-communities guarantee:")
	ds := gveleiden.CountDisconnected(g, res.Membership, 0)
	fmt.Printf("disconnected communities after 5 batches: %d of %d ✓\n",
		ds.Disconnected, ds.Communities)
}
