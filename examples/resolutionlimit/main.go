// Resolutionlimit: the classic failure mode of modularity maximization
// (paper §2) and its fix. A ring of k cliques should resolve into k
// communities, but once k exceeds ≈√(2m), modularity scores *merging
// adjacent cliques* higher — the resolution limit. The Constant Potts
// Model (CPM) has no such limit: a community survives exactly when its
// internal density exceeds γ, independent of the rest of the graph.
package main

import (
	"fmt"

	"gveleiden"
)

func main() {
	const cliqueSize = 5
	fmt.Println("ring-of-cliques (size-5 cliques joined in a ring by single edges)")
	fmt.Println()
	fmt.Println("cliques  modularity-|Γ|  CPM(γ=0.3)-|Γ|  expected")
	for _, k := range []int{10, 20, 30, 40, 60, 80} {
		g, truth := ring(k, cliqueSize)

		mod := gveleiden.DefaultOptions()
		resMod := gveleiden.Leiden(g, mod)

		cpm := gveleiden.DefaultOptions()
		cpm.Objective = gveleiden.ObjectiveCPM
		cpm.Resolution = 0.3
		resCPM := gveleiden.Leiden(g, cpm)

		note := ""
		if resMod.NumCommunities < k {
			note = "  ← modularity merges cliques"
		}
		fmt.Printf("%7d  %14d  %14d  %8d%s\n",
			k, resMod.NumCommunities, resCPM.NumCommunities, k, note)

		if resCPM.NumCommunities == k {
			if nmi := gveleiden.NMI(resCPM.Membership, truth); nmi < 0.999 {
				panic("CPM found k communities but not the cliques")
			}
		}
	}
	fmt.Println()
	fmt.Println("modularity hits its resolution limit near k ≈ √(2m); CPM recovers")
	fmt.Println("every clique at any ring size — the alternative quality function")
	fmt.Println("the paper points to in §2 (Traag, Van Dooren & Nesterov 2011).")
}

// ring builds k cliques of size s, adjacent cliques joined by one edge.
func ring(k, s int) (*gveleiden.Graph, []uint32) {
	b := gveleiden.NewBuilder(k * s)
	truth := make([]uint32, k*s)
	for c := 0; c < k; c++ {
		base := c * s
		for i := 0; i < s; i++ {
			truth[base+i] = uint32(c)
			for j := i + 1; j < s; j++ {
				b.AddEdge(uint32(base+i), uint32(base+j), 1)
			}
		}
		b.AddEdge(uint32(base), uint32(((c+1)%k)*s), 1)
	}
	return b.Build(), truth
}
