// Webgraph: the paper's motivating scenario — community detection on a
// web-crawl-like graph. Demonstrates the defect Leiden fixes: Louvain
// can emit internally-disconnected communities; Leiden's constrained
// refinement never does. Also prints the phase split (Figure 7 style).
package main

import (
	"fmt"
	"time"

	"gveleiden"
)

func main() {
	const n = 60000
	fmt.Printf("generating a %d-vertex web-crawl-like graph…\n", n)
	g, planted := gveleiden.GenerateWeb(n, 18, 2024)
	fmt.Printf("|V|=%d |E|=%d planted communities=%d\n\n",
		g.NumVertices(), g.NumUndirectedEdges(), distinct(planted))

	opt := gveleiden.DefaultOptions()

	// --- GVE-Louvain: fast, but can leave broken communities. ---
	t0 := time.Now()
	lou := gveleiden.Louvain(g, opt)
	louTime := time.Since(t0)
	louDis := gveleiden.CountDisconnected(g, lou.Membership, 0)

	// --- GVE-Leiden: the refinement phase repairs them. ---
	t0 = time.Now()
	lei := gveleiden.Leiden(g, opt)
	leiTime := time.Since(t0)
	leiDis := gveleiden.CountDisconnected(g, lei.Membership, 0)

	fmt.Println("algorithm    time        |Γ|    modularity  disconnected")
	fmt.Printf("GVE-Louvain  %-10s  %-5d  %.4f      %d of %d\n",
		louTime.Round(time.Millisecond), lou.NumCommunities, lou.Modularity,
		louDis.Disconnected, louDis.Communities)
	fmt.Printf("GVE-Leiden   %-10s  %-5d  %.4f      %d of %d\n\n",
		leiTime.Round(time.Millisecond), lei.NumCommunities, lei.Modularity,
		leiDis.Disconnected, leiDis.Communities)

	if leiDis.Disconnected != 0 {
		panic("Leiden guarantee violated")
	}
	fmt.Println("Leiden guarantee holds: zero internally-disconnected communities ✓")

	// How well did we recover the planted structure?
	fmt.Printf("NMI vs planted communities: %.3f\n\n", gveleiden.NMI(lei.Membership, planted))

	// Phase split (the paper's Figure 7a): on web graphs most time goes
	// to the local-moving phase of the first pass.
	mv, rf, ag, ot := lei.Stats.PhaseSplit()
	fmt.Printf("phase split: local-move %.0f%%  refine %.0f%%  aggregate %.0f%%  other %.0f%%\n",
		mv*100, rf*100, ag*100, ot*100)
	fmt.Printf("first pass: %.0f%% of runtime across %d passes\n",
		lei.Stats.FirstPassFraction()*100, lei.Passes)
	rate := float64(g.NumUndirectedEdges()) / leiTime.Seconds() / 1e6
	fmt.Printf("processing rate: %.1f M edges/s\n", rate)
}

func distinct(labels []uint32) int {
	seen := map[uint32]struct{}{}
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}
