// Roadnetwork: community detection on a low-degree, long-diameter road
// graph — the class where subsequent passes dominate runtime (Figure 7b)
// and where the resolution parameter and the CPM quality function show
// their value (many small natural clusters).
package main

import (
	"fmt"
	"time"

	"gveleiden"
)

func main() {
	const n = 80000
	fmt.Printf("generating a %d-vertex road network…\n", n)
	g := gveleiden.GenerateRoad(n, 99)
	fmt.Printf("|V|=%d |E|=%d (avg degree ≈ 2.1)\n\n", g.NumVertices(), g.NumUndirectedEdges())

	// --- Default run: watch the pass structure. ---
	opt := gveleiden.DefaultOptions()
	t0 := time.Now()
	res := gveleiden.Leiden(g, opt)
	el := time.Since(t0)
	fmt.Printf("GVE-Leiden: |Γ|=%d  Q=%.4f  %d passes  %s\n",
		res.NumCommunities, res.Modularity, res.Passes, el.Round(time.Millisecond))
	fmt.Printf("first pass: %.0f%% of runtime — on low-degree graphs the later\n"+
		"passes dominate (paper, Figure 7b); compare ≈98%% on web graphs.\n\n",
		res.Stats.FirstPassFraction()*100)
	fmt.Println("per-pass coarsening (|V'| per level):")
	for i, p := range res.Stats.Passes {
		fmt.Printf("  pass %d: %7d vertices, %2d move iterations\n",
			i, p.Vertices, p.MoveIterations)
	}
	fmt.Println()

	// --- Resolution sweep: γ controls community granularity. ---
	fmt.Println("resolution sweep (γ → communities):")
	for _, gamma := range []float64{0.25, 1, 4, 16} {
		o := gveleiden.DefaultOptions()
		o.Resolution = gamma
		r := gveleiden.Leiden(g, o)
		fmt.Printf("  γ=%-5.2f |Γ|=%-6d Q(γ=1)=%.4f\n",
			gamma, r.NumCommunities, gveleiden.Modularity(g, r.Membership))
	}
	fmt.Println()

	// --- CPM: the resolution-limit-free alternative (paper §2). ---
	cpm := gveleiden.CPM(g, res.Membership, 0.001)
	fmt.Printf("CPM(γ=0.001) of the modularity partition: %.4f\n", cpm)

	ds := gveleiden.CountDisconnected(g, res.Membership, 0)
	fmt.Printf("disconnected communities: %d of %d ✓\n", ds.Disconnected, ds.Communities)
}
