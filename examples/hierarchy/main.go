// Hierarchy: multi-resolution views of a network. Leiden's passes form
// a dendrogram — each level merges the previous level's communities —
// and LeidenHierarchy exposes it. This example walks the levels of a
// web-crawl-like graph, shows the quotient (community-of-communities)
// graph, tracks how communities survive between resolutions, and emits
// a Graphviz rendering of the top level.
package main

import (
	"fmt"
	"os"

	"gveleiden"
)

func main() {
	const n = 30000
	fmt.Printf("generating a %d-vertex web-crawl-like graph…\n", n)
	g, _ := gveleiden.GenerateWeb(n, 16, 5)
	fmt.Printf("|V|=%d |E|=%d\n\n", g.NumVertices(), g.NumUndirectedEdges())

	res, h := gveleiden.LeidenHierarchy(g, gveleiden.DefaultOptions())
	fmt.Printf("GVE-Leiden: %d communities, Q=%.4f, %d dendrogram levels\n\n",
		res.NumCommunities, res.Modularity, h.Depth())

	// Walk the dendrogram: each depth is a coarser, valid partition.
	fmt.Println("depth  communities  modularity  stability vs next")
	var prev []uint32
	for depth := 1; depth <= h.Depth(); depth++ {
		flat, err := h.Flatten(depth)
		if err != nil {
			panic(err)
		}
		stability := "-"
		if prev != nil {
			stability = fmt.Sprintf("%.3f", gveleiden.StabilityIndex(flat, prev))
		}
		fmt.Printf("%5d  %11d  %.4f      %s\n",
			depth, distinct(flat), gveleiden.Modularity(g, flat), stability)
		prev = flat
	}
	fmt.Println()

	// The quotient graph: one vertex per final community.
	q, labels := gveleiden.CommunityGraph(g, res.Membership)
	fmt.Printf("quotient graph: %d super-vertices, %d super-edges\n",
		q.NumVertices(), q.NumUndirectedEdges())
	heaviest := 0.0
	var hu, hv uint32
	for u := 0; u < q.NumVertices(); u++ {
		es, ws := q.Neighbors(uint32(u))
		for k, e := range es {
			if e != uint32(u) && float64(ws[k]) > heaviest {
				heaviest = float64(ws[k])
				hu, hv = labels[u], labels[e]
			}
		}
	}
	fmt.Printf("most-coupled community pair: %d ↔ %d (weight %.0f)\n\n", hu, hv, heaviest)

	// Render the quotient graph for Graphviz.
	singles := make([]uint32, q.NumVertices())
	for i := range singles {
		singles[i] = uint32(i)
	}
	f, err := os.CreateTemp("", "quotient-*.dot")
	if err != nil {
		panic(err)
	}
	defer f.Close()
	if err := gveleiden.WriteDOT(f, q, singles); err != nil {
		panic(err)
	}
	fmt.Printf("quotient graph written to %s (render with: dot -Tsvg)\n", f.Name())
}

func distinct(labels []uint32) int {
	seen := map[uint32]struct{}{}
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}
