// Socialnetwork: community detection on a dense, weakly-clustered
// social graph (the com-Orkut regime of the paper: few large
// communities). Sweeps the thread count (Figure 9 style) and compares
// the greedy refinement the paper recommends against the randomized
// refinement of the original Leiden algorithm (Figures 1-2).
package main

import (
	"fmt"
	"runtime"
	"time"

	"gveleiden"
)

func main() {
	const n = 30000
	fmt.Printf("generating a %d-vertex social network (12 planted communities, μ=0.4)…\n", n)
	g, _ := gveleiden.GenerateSocial(n, 36, 12, 0.4, 7)
	fmt.Printf("|V|=%d |E|=%d\n\n", g.NumVertices(), g.NumUndirectedEdges())

	// --- Strong scaling sweep (Figure 9). ---
	fmt.Println("strong scaling (threads → runtime):")
	var base time.Duration
	maxT := runtime.GOMAXPROCS(0) * 2
	for threads := 1; threads <= maxT; threads *= 2 {
		opt := gveleiden.DefaultOptions()
		opt.Threads = threads
		best := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			gveleiden.Leiden(g, opt)
			if el := time.Since(t0); best == 0 || el < best {
				best = el
			}
		}
		if threads == 1 {
			base = best
		}
		fmt.Printf("  %2d threads: %-10s speedup %.2fx\n",
			threads, best.Round(time.Microsecond), float64(base)/float64(best))
	}
	if runtime.NumCPU() == 1 {
		fmt.Println("  (single-CPU machine: speedups are bounded by 1.0)")
	}
	fmt.Println()

	// --- Greedy vs randomized refinement (Figures 1-2). ---
	fmt.Println("refinement approaches:")
	for _, cfg := range []struct {
		name string
		mode gveleiden.RefinementMode
	}{
		{"greedy (paper's choice)", gveleiden.RefineGreedy},
		{"random (original Leiden)", gveleiden.RefineRandom},
	} {
		opt := gveleiden.DefaultOptions()
		opt.Refinement = cfg.mode
		t0 := time.Now()
		res := gveleiden.Leiden(g, opt)
		el := time.Since(t0)
		fmt.Printf("  %-26s %-10s |Γ|=%-4d Q=%.4f\n",
			cfg.name, el.Round(time.Microsecond), res.NumCommunities, res.Modularity)
	}
	fmt.Println()

	// Social graphs are where aggregation dominates (Figure 7a).
	res := gveleiden.Leiden(g, gveleiden.DefaultOptions())
	mv, rf, ag, ot := res.Stats.PhaseSplit()
	fmt.Printf("phase split: local-move %.0f%%  refine %.0f%%  aggregate %.0f%%  other %.0f%%\n",
		mv*100, rf*100, ag*100, ot*100)
}
