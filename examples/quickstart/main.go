// Quickstart: build a graph, detect communities with GVE-Leiden, and
// inspect the result — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"gveleiden"
)

func main() {
	// Zachary's karate club — the classic community-detection example.
	// Edges copied from the original 1977 study (unit weights).
	edges := [][2]uint32{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7}, {0, 8},
		{0, 10}, {0, 11}, {0, 12}, {0, 13}, {0, 17}, {0, 19}, {0, 21},
		{0, 31}, {1, 2}, {1, 3}, {1, 7}, {1, 13}, {1, 17}, {1, 19},
		{1, 21}, {1, 30}, {2, 3}, {2, 7}, {2, 8}, {2, 9}, {2, 13},
		{2, 27}, {2, 28}, {2, 32}, {3, 7}, {3, 12}, {3, 13}, {4, 6},
		{4, 10}, {5, 6}, {5, 10}, {5, 16}, {6, 16}, {8, 30}, {8, 32},
		{8, 33}, {9, 33}, {13, 33}, {14, 32}, {14, 33}, {15, 32},
		{15, 33}, {18, 32}, {18, 33}, {19, 33}, {20, 32}, {20, 33},
		{22, 32}, {22, 33}, {23, 25}, {23, 27}, {23, 29}, {23, 32},
		{23, 33}, {24, 25}, {24, 27}, {24, 31}, {25, 31}, {26, 29},
		{26, 33}, {27, 33}, {28, 31}, {28, 33}, {29, 32}, {29, 33},
		{30, 32}, {30, 33}, {31, 32}, {31, 33}, {32, 33},
	}
	b := gveleiden.NewBuilder(34)
	for _, e := range edges {
		b.AddEdge(e[0], e[1], 1)
	}
	g := b.Build()

	opt := gveleiden.DefaultOptions()
	res := gveleiden.Leiden(g, opt)

	fmt.Printf("karate club: %d vertices, %d edges\n",
		g.NumVertices(), g.NumUndirectedEdges())
	fmt.Printf("found %d communities, modularity %.4f, %d passes\n",
		res.NumCommunities, res.Modularity, res.Passes)

	// Group members per community.
	groups := make(map[uint32][]int)
	for v, c := range res.Membership {
		groups[c] = append(groups[c], v)
	}
	for c := uint32(0); int(c) < res.NumCommunities; c++ {
		fmt.Printf("  community %d: %v\n", c, groups[c])
	}

	// The Leiden guarantee: every community is internally connected.
	ds := gveleiden.CountDisconnected(g, res.Membership, 0)
	if ds.Disconnected != 0 {
		log.Fatalf("unexpected: %d disconnected communities", ds.Disconnected)
	}
	fmt.Println("all communities are internally connected ✓")
}
