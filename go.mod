module gveleiden

go 1.22
