// Micro-benchmarks for the substrate packages: the primitives whose
// costs compose into the phase timings of Figure 7.
package gveleiden_test

import (
	"testing"

	"gveleiden/internal/color"
	"gveleiden/internal/graph"
	"gveleiden/internal/hashtable"
	"gveleiden/internal/order"
	"gveleiden/internal/parallel"
	"gveleiden/internal/quality"
	"gveleiden/internal/stream"
)

func BenchmarkSubstrate_ExclusiveScan(b *testing.B) {
	a := make([]uint32, 1<<20)
	for i := range a {
		a[i] = uint32(i % 7)
	}
	work := make([]uint32, len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, a)
		parallel.ExclusiveScanUint32(work, 0)
	}
	b.SetBytes(int64(len(a) * 4))
}

func BenchmarkSubstrate_HashtableScan(b *testing.B) {
	g := classGraphs(b)["web"]
	h := hashtable.New(g.NumVertices())
	comm := make([]uint32, g.NumVertices())
	for i := range comm {
		comm[i] = uint32(i % 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := uint32(i % g.NumVertices())
		h.Clear()
		es, ws := g.Neighbors(u)
		for k, e := range es {
			h.Add(comm[e], float64(ws[k]))
		}
	}
}

func BenchmarkSubstrate_Coloring(b *testing.B) {
	g := classGraphs(b)["web"]
	var k int
	for i := 0; i < b.N; i++ {
		k = color.Greedy(g, 0).NumColors
	}
	b.ReportMetric(float64(k), "colors")
}

func BenchmarkSubstrate_BFSOrder(b *testing.B) {
	g := classGraphs(b)["road"]
	for i := 0; i < b.N; i++ {
		order.BFS(g, 0)
	}
}

func BenchmarkSubstrate_StreamSnapshot(b *testing.B) {
	g := classGraphs(b)["social"]
	s := stream.FromCSR(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Snapshot()
	}
}

func BenchmarkSubstrate_DisconnectionCounter(b *testing.B) {
	g := classGraphs(b)["kmer"]
	memb := make([]uint32, g.NumVertices())
	for i := range memb {
		memb[i] = uint32(i / 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quality.CountDisconnected(g, memb, 0)
	}
}

func BenchmarkSubstrate_GraphBuild(b *testing.B) {
	g := classGraphs(b)["web"]
	edges := make([]graph.Edge, 0, g.NumUndirectedEdges())
	for i := 0; i < g.NumVertices(); i++ {
		es, ws := g.Neighbors(uint32(i))
		for k, e := range es {
			if uint32(i) <= e {
				edges = append(edges, graph.Edge{U: uint32(i), V: e, W: ws[k]})
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.FromEdges(g.NumVertices(), edges)
	}
}
