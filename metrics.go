package gveleiden

import (
	"gveleiden/internal/quality"
)

// CommunityMetrics summarizes one community: size, internal weight,
// cut, volume, density, conductance, and internal connectivity.
type CommunityMetrics = quality.CommunityMetrics

// PartitionMetrics summarizes a clustering: modularity, coverage,
// performance, conductance statistics, size distribution, and the
// count of internally-disconnected communities.
type PartitionMetrics = quality.PartitionMetrics

// AnalyzeCommunities computes per-community metrics for a membership.
func AnalyzeCommunities(g *Graph, membership []uint32) []CommunityMetrics {
	return quality.AnalyzeCommunities(g, membership)
}

// AnalyzePartition computes whole-partition quality metrics.
func AnalyzePartition(g *Graph, membership []uint32) PartitionMetrics {
	return quality.AnalyzePartition(g, membership)
}

// Conductance returns the conductance of an arbitrary vertex set.
func Conductance(g *Graph, set []uint32) float64 {
	return quality.Conductance(g, set)
}

// ModularityResolution evaluates generalized modularity at resolution γ.
func ModularityResolution(g *Graph, membership []uint32, gamma float64) float64 {
	return quality.ModularityResolution(g, membership, gamma)
}

// RandIndex returns the fraction of vertex pairs two partitions agree
// on (O(n²); intended for small evaluations).
func RandIndex(a, b []uint32) float64 { return quality.RandIndex(a, b) }

// CommunityGraph builds the quotient graph of a membership: one vertex
// per community, inter-community weights summed, self-loops carrying
// each community's internal weight. The slice maps quotient vertex →
// original community label.
func CommunityGraph(g *Graph, membership []uint32) (*Graph, []uint32) {
	return quality.CommunityGraph(g, membership)
}

// SamePartition reports whether two labelings describe the same
// partition up to label renaming (exact, no floating point).
func SamePartition(a, b []uint32) bool { return quality.SamePartition(a, b) }

// Match pairs a community of a previous snapshot with its best-Jaccard
// continuation in the current one.
type Match = quality.Match

// NoMatch marks a vanished community in Match.Cur.
const NoMatch = quality.NoMatch

// MatchCommunities tracks communities across two snapshots of an
// evolving graph, pairing each previous community with its best-Jaccard
// continuation — the companion to LeidenDynamic for studying community
// evolution.
func MatchCommunities(prev, cur []uint32) []Match {
	return quality.MatchCommunities(prev, cur)
}

// StabilityIndex is the size-weighted mean Jaccard of the best matches
// between two snapshots (1 = every community survived intact).
func StabilityIndex(prev, cur []uint32) float64 {
	return quality.StabilityIndex(prev, cur)
}
