// Benchmarks for the extensions beyond the paper's evaluation: the
// ablation of §4.1 design choices, the CPM objective, and the dynamic
// Leiden variants (the paper's future-work direction).
package gveleiden_test

import (
	"fmt"
	"testing"

	"gveleiden/internal/core"
	"gveleiden/internal/graph"
)

// --- Ablation: the §4.1 optimizations, one knob at a time ------------

func BenchmarkAblation_Pruning(b *testing.B) {
	g := classGraphs(b)["web"]
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"flag-pruning", false}, {"no-pruning", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.DisablePruning = cfg.disable
			for i := 0; i < b.N; i++ {
				core.Leiden(g, opt)
			}
		})
	}
}

func BenchmarkAblation_Grain(b *testing.B) {
	g := classGraphs(b)["web"]
	for _, grain := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("grain-%d", grain), func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.Grain = grain
			for i := 0; i < b.N; i++ {
				core.Leiden(g, opt)
			}
		})
	}
}

func BenchmarkAblation_Variants(b *testing.B) {
	g := classGraphs(b)["road"]
	for _, cfg := range []struct {
		name    string
		variant core.Variant
	}{
		{"light", core.VariantLight},
		{"medium", core.VariantMedium},
		{"heavy", core.VariantHeavy},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.Variant = cfg.variant
			for i := 0; i < b.N; i++ {
				core.Leiden(g, opt)
			}
		})
	}
}

// --- CPM objective ----------------------------------------------------

func BenchmarkObjective(b *testing.B) {
	g := classGraphs(b)["web"]
	for _, cfg := range []struct {
		name string
		obj  core.Objective
		res  float64
	}{
		{"modularity", core.ObjectiveModularity, 1},
		{"cpm", core.ObjectiveCPM, 0.02},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.Objective = cfg.obj
			opt.Resolution = cfg.res
			for i := 0; i < b.N; i++ {
				core.Leiden(g, opt)
			}
		})
	}
}

// --- Dynamic Leiden ----------------------------------------------------

func BenchmarkDynamic(b *testing.B) {
	g := classGraphs(b)["social"]
	opt := core.DefaultOptions()
	prev := core.Leiden(g, opt)
	m := int(g.NumUndirectedEdges() / 1000)
	if m < 1 {
		m = 1
	}
	ins, del := graph.RandomDelta(g, m, m, 5)
	delta := core.Delta{Insertions: ins, Deletions: del}
	gNew, err := graph.ApplyDelta(g, ins, del)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("static-rerun", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Leiden(gNew, opt)
		}
	})
	b.Run("naive-dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.LeidenDynamic(gNew, prev.Membership, delta, core.DynamicNaive, opt)
		}
	})
	b.Run("dynamic-frontier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.LeidenDynamic(gNew, prev.Membership, delta, core.DynamicFrontier, opt)
		}
	})
	b.Run("apply-delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := graph.ApplyDelta(g, ins, del); err != nil {
				b.Fatal(err)
			}
		}
	})
}
