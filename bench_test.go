// Benchmarks regenerating the measurement behind every table and figure
// of the paper (see DESIGN.md §4 for the index). Each benchmark times
// the exact computation the corresponding experiment measures; the
// cmd/benchall tool renders the full tables from the same code paths.
//
// Run them all with:
//
//	go test -bench=. -benchmem
package gveleiden_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"gveleiden/internal/baseline"
	"gveleiden/internal/bench"
	"gveleiden/internal/core"
	"gveleiden/internal/gen"
	"gveleiden/internal/graph"
	"gveleiden/internal/quality"
)

// benchScale keeps `go test -bench=.` under a minute on one core while
// still exercising multi-pass behaviour on every graph class.
const benchScale = 0.15

var (
	corpusOnce sync.Once
	corpus     map[string]*graph.CSR // one representative per class
)

func classGraphs(b *testing.B) map[string]*graph.CSR {
	corpusOnce.Do(func() {
		corpus = map[string]*graph.CSR{}
		for _, d := range bench.Registry(benchScale) {
			switch d.Name {
			case "web-indochina", "soc-livejournal", "road-asia", "kmer-A2a":
				g, _ := bench.Load(d)
				corpus[d.Class] = g
			}
		}
	})
	if len(corpus) != 4 {
		b.Fatalf("corpus setup failed: %d classes", len(corpus))
	}
	return corpus
}

func reportGraph(b *testing.B, g *graph.CSR) {
	b.ReportMetric(float64(g.NumUndirectedEdges()), "edges")
}

// --- Table 2: dataset construction -----------------------------------

func BenchmarkTable2_DatasetBuild(b *testing.B) {
	for _, d := range bench.Registry(benchScale) {
		b.Run(d.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, _ := d.Build()
				if g.NumVertices() == 0 {
					b.Fatal("empty dataset")
				}
			}
		})
	}
}

// --- Figure 6(a) / Table 1: the five implementations -----------------

func BenchmarkFig6a_Leiden(b *testing.B) {
	graphs := classGraphs(b)
	bopt := baseline.DefaultOptions()
	gopt := core.DefaultOptions()
	impls := []struct {
		name string
		run  func(g *graph.CSR) []uint32
	}{
		{"Original", func(g *graph.CSR) []uint32 { return baseline.SeqLeiden(g, bopt) }},
		{"igraph", func(g *graph.CSR) []uint32 { return baseline.SeqLeidenIgraph(g, bopt) }},
		{"NetworKit", func(g *graph.CSR) []uint32 { return baseline.ParLeidenQueue(g, bopt) }},
		{"cuGraphBSP", func(g *graph.CSR) []uint32 { return baseline.ParLeidenBSP(g, bopt) }},
		{"GVELeiden", func(g *graph.CSR) []uint32 { return core.Leiden(g, gopt).Membership }},
	}
	for _, class := range []string{"web", "social", "road", "kmer"} {
		g := graphs[class]
		for _, impl := range impls {
			b.Run(fmt.Sprintf("%s/%s", impl.name, class), func(b *testing.B) {
				reportGraph(b, g)
				for i := 0; i < b.N; i++ {
					if memb := impl.run(g); len(memb) != g.NumVertices() {
						b.Fatal("bad membership")
					}
				}
			})
		}
	}
}

// --- Figure 6(d): the disconnected-communities counter ---------------

func BenchmarkFig6d_DisconnectionCheck(b *testing.B) {
	g := classGraphs(b)["web"]
	res := core.Leiden(g, core.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ds := quality.CountDisconnected(g, res.Membership, 0); ds.Disconnected != 0 {
			b.Fatal("GVE-Leiden emitted disconnected communities")
		}
	}
}

// --- Figures 1-2: refinement approaches and variants -----------------

func BenchmarkFig1_Refinement(b *testing.B) {
	g := classGraphs(b)["web"]
	configs := []struct {
		name    string
		refine  core.RefinementMode
		variant core.Variant
	}{
		{"greedy", core.RefineGreedy, core.VariantLight},
		{"greedy-medium", core.RefineGreedy, core.VariantMedium},
		{"greedy-heavy", core.RefineGreedy, core.VariantHeavy},
		{"random", core.RefineRandom, core.VariantLight},
		{"random-medium", core.RefineRandom, core.VariantMedium},
		{"random-heavy", core.RefineRandom, core.VariantHeavy},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.Refinement = cfg.refine
			opt.Variant = cfg.variant
			var q float64
			for i := 0; i < b.N; i++ {
				q = core.Leiden(g, opt).Modularity
			}
			b.ReportMetric(q, "modularity")
		})
	}
}

// --- Figures 3-4: super-vertex label modes ---------------------------

func BenchmarkFig3_Labels(b *testing.B) {
	g := classGraphs(b)["social"]
	for _, cfg := range []struct {
		name string
		mode core.LabelMode
	}{
		{"move-based", core.LabelMove},
		{"refine-based", core.LabelRefine},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.Labels = cfg.mode
			var q float64
			for i := 0; i < b.N; i++ {
				q = core.Leiden(g, opt).Modularity
			}
			b.ReportMetric(q, "modularity")
		})
	}
}

// --- Figure 7: phase split --------------------------------------------

func BenchmarkFig7_PhaseSplit(b *testing.B) {
	for class, g := range classGraphs(b) {
		b.Run(class, func(b *testing.B) {
			opt := core.DefaultOptions()
			var mv, rf, ag, ot, fp float64
			for i := 0; i < b.N; i++ {
				res := core.Leiden(g, opt)
				m, r, a, o := res.Stats.PhaseSplit()
				mv, rf, ag, ot = m, r, a, o
				fp = res.Stats.FirstPassFraction()
			}
			b.ReportMetric(mv*100, "%move")
			b.ReportMetric(rf*100, "%refine")
			b.ReportMetric(ag*100, "%aggregate")
			b.ReportMetric(ot*100, "%other")
			b.ReportMetric(fp*100, "%first-pass")
		})
	}
}

// --- Figure 8: runtime/|E| -------------------------------------------

func BenchmarkFig8_PerEdge(b *testing.B) {
	for class, g := range classGraphs(b) {
		b.Run(class, func(b *testing.B) {
			opt := core.DefaultOptions()
			for i := 0; i < b.N; i++ {
				core.Leiden(g, opt)
			}
			b.StopTimer()
			perEdge := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(g.NumUndirectedEdges())
			b.ReportMetric(perEdge, "ns/edge")
		})
	}
}

// --- Figure 9: strong scaling ----------------------------------------

func BenchmarkFig9_StrongScaling(b *testing.B) {
	g := classGraphs(b)["web"]
	maxT := runtime.GOMAXPROCS(0)
	for t := 1; t <= maxT*2; t *= 2 {
		b.Run(fmt.Sprintf("threads-%d", t), func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.Threads = t
			for i := 0; i < b.N; i++ {
				core.Leiden(g, opt)
			}
		})
	}
}

// --- Component micro-benchmarks (phase costs behind Figure 7) --------

func BenchmarkComponent_Louvain(b *testing.B) {
	g := classGraphs(b)["web"]
	opt := core.DefaultOptions()
	for i := 0; i < b.N; i++ {
		core.Louvain(g, opt)
	}
}

func BenchmarkComponent_Modularity(b *testing.B) {
	g := classGraphs(b)["web"]
	res := core.Leiden(g, core.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quality.Modularity(g, res.Membership)
	}
}

func BenchmarkComponent_GraphGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gen.WebGraph(5000, 12, uint64(i))
	}
}
